//! Application of the QSVT matrix-inversion polynomial.
//!
//! [`QsvtInverter`] packages everything the linear solver of `qls-core` needs
//! from the quantum side: given `A` and a target solver accuracy `ε_l`, it
//! builds the inverse polynomial of Eq. (4) at approximation accuracy
//! `ε' = ε_l/κ` (Section III-A of the paper), a block-encoding of `A†`, and a
//! way to apply `P^{(SV)}(A†/α)` to a vector.  Two execution modes are
//! provided:
//!
//! * [`QsvtMode::CircuitReal`] — the full gate-level pipeline: symmetric-QSP
//!   phase factors, the QSVT circuit of Eqs. (2)–(3) with real-part
//!   extraction, state-vector simulation and ancilla post-selection.  This is
//!   exact but only tractable for moderate polynomial degrees (small κ).
//! * [`QsvtMode::Emulation`] — the ideal-output emulation used for the
//!   convergence experiments (Figs. 3–5): the polynomial is applied to the
//!   singular values classically (`V P(Σ/α) Wᵀ v`), which is mathematically
//!   the output of a noiseless QSVT circuit with exact phase factors.  The
//!   resource accounting (block-encoding calls = degree) is identical; see
//!   the substitution table in DESIGN.md.

use crate::circuit::QsvtCircuit;
use crate::phases::{find_phases_cached, PhaseError, PhaseFindingOptions};
use num_complex::Complex64;
use qls_cache::CachePolicy;
use qls_encoding::DilationBlockEncoding;
use qls_linalg::{Matrix, Svd, Vector};
use qls_poly::InversePolynomial;
use qls_sim::fault::{lock_injector, FaultError, SharedFaultInjector};
use qls_sim::{
    estimate_resources, CircuitStats, ExecMode, OptLevel, QuantumExecutor, ResourceEstimate,
    StateVector, TCountModel,
};
use serde::Serialize;

/// How the QSVT output is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QsvtMode {
    /// Full circuit path (phase factors + simulated QSVT circuit).
    CircuitReal,
    /// Ideal-output emulation (classical application of the polynomial to the
    /// singular values).
    Emulation,
}

/// Resource accounting for one QSVT solve.
#[derive(Debug, Clone, Serialize)]
pub struct QsvtResources {
    /// Degree of the inversion polynomial (2D + 1).
    pub degree: usize,
    /// Calls to the block-encoding `U` / `U†` per solve (= degree, Remark 1;
    /// doubled when real-part extraction is used).
    pub block_encoding_calls: usize,
    /// Data qubits.
    pub data_qubits: usize,
    /// Ancilla qubits (block-encoding + QSVT extraction ancillas).
    pub ancilla_qubits: usize,
    /// Gate-level estimate of the full QSVT circuit (only in circuit mode).
    pub circuit_estimate: Option<ResourceEstimate>,
}

/// Errors produced while preparing or running the QSVT inversion.
#[derive(Debug, Clone)]
pub enum QsvtError {
    /// The matrix is singular (smallest singular value is zero).
    SingularMatrix,
    /// Phase-factor computation failed (circuit mode only).
    Phases(PhaseError),
    /// Ancilla post-selection had (numerically) zero success probability.
    PostSelectionFailed,
    /// An attached fault injector reported a transient device failure on
    /// this run (see `qls_sim::fault`).
    InjectedFault {
        /// 0-based device-run index that failed.
        run_index: usize,
    },
    /// The solve produced a non-finite (NaN/Inf) output — caught at the
    /// readout boundary instead of leaking into downstream comparisons.
    NonFiniteOutput,
    /// An internal invariant of the solver was violated (a bug, not an
    /// input error); the message names the invariant.
    Internal(&'static str),
}

impl std::fmt::Display for QsvtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QsvtError::SingularMatrix => write!(f, "matrix is singular"),
            QsvtError::Phases(e) => write!(f, "phase-factor computation failed: {e}"),
            QsvtError::PostSelectionFailed => write!(f, "ancilla post-selection failed"),
            QsvtError::InjectedFault { run_index } => {
                write!(f, "injected transient failure on device run {run_index}")
            }
            QsvtError::NonFiniteOutput => {
                write!(f, "solve produced a non-finite (NaN/Inf) output")
            }
            QsvtError::Internal(what) => write!(f, "internal solver invariant violated: {what}"),
        }
    }
}

impl std::error::Error for QsvtError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QsvtError::Phases(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FaultError> for QsvtError {
    fn from(e: FaultError) -> Self {
        match e {
            FaultError::InjectedTransient { run_index } => QsvtError::InjectedFault { run_index },
        }
    }
}

/// Circuit-mode artefacts, all built exactly once in [`QsvtInverter::new`]:
/// the QSVT circuit and the circuit **compiled** into a [`QuantumExecutor`],
/// plus the ancilla index list used for post-selection.  Nothing here is
/// re-derived or re-compiled on the per-solve path.  (The phase factors and
/// block-encoding only feed the circuit construction and are not retained.)
struct CircuitArtefacts {
    qsvt: QsvtCircuit,
    executor: QuantumExecutor,
    /// Ancilla qubit indices `n..n+a`, hoisted out of the per-solve path.
    ancillas: Vec<usize>,
}

/// The QSVT-based approximate inverse of a fixed matrix.
pub struct QsvtInverter {
    matrix: Matrix<f64>,
    svd: Svd<f64>,
    alpha: f64,
    kappa: f64,
    epsilon_l: f64,
    polynomial: InversePolynomial,
    mode: QsvtMode,
    /// Circuit-mode artefacts (phases + compiled circuit), built at
    /// construction; `None` in emulation mode.
    circuit: Option<CircuitArtefacts>,
    /// Fault injector shared with the executor (circuit mode) or consulted
    /// directly after the ideal output (emulation mode).  `None` keeps every
    /// solve ideal and bit-identical to the pre-fault inverter.
    fault: Option<SharedFaultInjector>,
}

impl QsvtInverter {
    /// Prepare a QSVT inversion of `a` with target solver accuracy `epsilon_l`
    /// (relative error on the solution direction).  In circuit mode the QSVT
    /// circuit is optimized (gate fusion + diagonal merging, the default
    /// [`OptLevel::Fuse`]) and compiled exactly once.
    pub fn new(a: &Matrix<f64>, epsilon_l: f64, mode: QsvtMode) -> Result<Self, QsvtError> {
        Self::with_opt_level(a, epsilon_l, mode, OptLevel::default())
    }

    /// [`QsvtInverter::new`] at an explicit circuit-optimization level.
    /// `OptLevel::None` compiles the QSVT gate list one-to-one — the
    /// unoptimized compile-once baseline `bench_json` measures fusion
    /// against (the fully uncached pre-engine path is
    /// [`QsvtInverter::solve_direction_uncached`]).
    pub fn with_opt_level(
        a: &Matrix<f64>,
        epsilon_l: f64,
        mode: QsvtMode,
        opt_level: OptLevel,
    ) -> Result<Self, QsvtError> {
        Self::with_exec_mode(a, epsilon_l, mode, opt_level, ExecMode::Flat)
    }

    /// [`QsvtInverter::with_opt_level`] at an explicit [`ExecMode`]:
    /// `ExecMode::Sharded` compiles the QSVT circuit into the sharded
    /// register engine (`qls_sim::shard`) with fusion biased toward
    /// low-qubit support, so every solve executes via per-shard sweeps and
    /// pairwise exchanges.  Only meaningful in circuit mode; emulation mode
    /// has no register to shard.
    pub fn with_exec_mode(
        a: &Matrix<f64>,
        epsilon_l: f64,
        mode: QsvtMode,
        opt_level: OptLevel,
        exec_mode: ExecMode,
    ) -> Result<Self, QsvtError> {
        Self::with_config(
            a,
            epsilon_l,
            mode,
            opt_level,
            exec_mode,
            CachePolicy::default(),
        )
    }

    /// The general constructor, adding the [`CachePolicy`] for the persistent
    /// artifact cache (`qls-cache`).  `Enabled` — the default throughout the
    /// QSVT layer — consults the on-disk stores before the two expensive
    /// construction stages: symmetric-QSP phase factors (kind `qsvt-phases`,
    /// keyed by the polynomial's Chebyshev coefficients and the
    /// phase-finding options) and the fused circuit (kind `fused-circuits`,
    /// keyed by the gate list, fusion options, and machine fingerprint).
    /// Warm constructions therefore run zero phase-factor iterations and
    /// zero fusion passes, and produce bit-identical artefacts to a cold
    /// build.  `Disabled` is the escape hatch that never touches the disk.
    pub fn with_config(
        a: &Matrix<f64>,
        epsilon_l: f64,
        mode: QsvtMode,
        opt_level: OptLevel,
        exec_mode: ExecMode,
        cache: CachePolicy,
    ) -> Result<Self, QsvtError> {
        assert!(a.is_square(), "QSVT inversion needs a square matrix");
        assert!(
            epsilon_l > 0.0 && epsilon_l < 1.0,
            "epsilon_l must be in (0, 1)"
        );
        let svd = Svd::new(a);
        let sigma_min = svd.sigma_min();
        if sigma_min <= 0.0 {
            return Err(QsvtError::SingularMatrix);
        }
        let alpha = svd.norm2();
        let kappa = svd.cond();
        // Polynomial approximation accuracy ε' = ε_l.  The paper's worst-case
        // analysis asks for ε' = O(ε_l/κ) to certify a relative solution error
        // of ε_l (Section III-A); on non-adversarial right-hand sides the
        // forward error of the solve tracks ε' itself, so using ε' = ε_l
        // reproduces the per-iteration contraction the paper measures (between
        // ε_l and ε_l·κ) without over-delivering accuracy.  The worst case is
        // still covered by Theorem III.1's ε_l·κ contraction factor.
        let eps_prime = epsilon_l.clamp(1e-14, 0.49);
        let polynomial = InversePolynomial::new(kappa, eps_prime);

        let circuit = if mode == QsvtMode::CircuitReal {
            let phases =
                find_phases_cached(&polynomial.series, &PhaseFindingOptions::default(), cache)
                    .map_err(QsvtError::Phases)?;
            let be = DilationBlockEncoding::of_adjoint(a, alpha);
            let qsvt = QsvtCircuit::with_real_part_extraction(&be, &phases.phases);
            // Optimize + compile exactly once; every solve_direction call
            // (single or batched) reuses this compiled artefact.
            let executor =
                QuantumExecutor::with_config(qsvt.circuit(), opt_level, exec_mode, cache);
            let n = qsvt.num_data_qubits();
            let total = n + qsvt.num_ancilla_qubits();
            Some(CircuitArtefacts {
                qsvt,
                executor,
                ancillas: (n..total).collect(),
            })
        } else {
            None
        };

        Ok(QsvtInverter {
            matrix: a.clone(),
            svd,
            alpha,
            kappa,
            epsilon_l,
            polynomial,
            mode,
            circuit,
            fault: None,
        })
    }

    /// Attach a fault injector: in circuit mode it is handed to the compiled
    /// executor (degrading the register after each run through the checked
    /// execution path); in emulation mode it perturbs the ideal output
    /// direction, modelling the same per-run degradation without a register.
    /// The uncached baseline path stays fault-free — it is the oracle.
    pub fn attach_fault_injector(&mut self, injector: SharedFaultInjector) {
        if let Some(art) = self.circuit.as_mut() {
            art.executor.attach_fault_injector(injector.clone());
        }
        self.fault = Some(injector);
    }

    /// Detach and return the fault injector, restoring ideal execution.
    pub fn detach_fault_injector(&mut self) -> Option<SharedFaultInjector> {
        if let Some(art) = self.circuit.as_mut() {
            art.executor.detach_fault_injector();
        }
        self.fault.take()
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.fault.as_ref()
    }

    /// The circuit-mode artefacts, or the `Internal` error that replaces the
    /// old `expect("circuit mode artefacts")` panics on the solve path.
    fn artefacts(&self) -> Result<&CircuitArtefacts, QsvtError> {
        self.circuit.as_ref().ok_or(QsvtError::Internal(
            "circuit artefacts missing in circuit mode",
        ))
    }

    /// The condition number measured from the SVD.
    pub fn kappa(&self) -> f64 {
        self.kappa
    }

    /// The block-encoding sub-normalisation (`α = ‖A‖₂`).
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The requested solver accuracy ε_l.
    pub fn epsilon_l(&self) -> f64 {
        self.epsilon_l
    }

    /// The inversion polynomial in use.
    pub fn polynomial(&self) -> &InversePolynomial {
        &self.polynomial
    }

    /// The execution mode.
    pub fn mode(&self) -> QsvtMode {
        self.mode
    }

    /// The matrix this inverter was built for.
    pub fn matrix(&self) -> &Matrix<f64> {
        &self.matrix
    }

    /// The QSVT circuit built in circuit mode (`None` in emulation mode).
    /// The per-solve path never re-walks it — it was compiled once at
    /// construction — but benches and diagnostics can still inspect it.
    pub fn qsvt_circuit(&self) -> Option<&QsvtCircuit> {
        self.circuit.as_ref().map(|art| &art.qsvt)
    }

    /// The optimizer's before/after report for the compiled QSVT circuit
    /// (`Some` only in circuit mode with fusion on): raw vs fused op counts
    /// and estimated sweep work.
    pub fn circuit_stats(&self) -> Option<&CircuitStats> {
        self.circuit.as_ref().and_then(|art| art.executor.stats())
    }

    /// The execution mode of the compiled QSVT engine (`None` in emulation
    /// mode, which has no register).
    pub fn exec_mode(&self) -> Option<ExecMode> {
        self.circuit.as_ref().map(|art| art.executor.exec_mode())
    }

    /// Resource accounting for one solve.
    pub fn resources(&self) -> QsvtResources {
        let degree = self.polynomial.degree();
        match &self.circuit {
            Some(art) => QsvtResources {
                degree,
                block_encoding_calls: art.qsvt.block_encoding_calls(),
                data_qubits: art.qsvt.num_data_qubits(),
                ancilla_qubits: art.qsvt.num_ancilla_qubits(),
                circuit_estimate: Some(estimate_resources(
                    art.qsvt.circuit(),
                    &TCountModel::default(),
                )),
            },
            None => {
                let n = self.matrix.nrows().trailing_zeros() as usize;
                QsvtResources {
                    degree,
                    block_encoding_calls: degree,
                    data_qubits: n,
                    // Emulation models the 1-ancilla dilation encoding + the QSVT ancilla.
                    ancilla_qubits: 2,
                    circuit_estimate: None,
                }
            }
        }
    }

    /// Apply the QSVT inversion to a right-hand side: returns the *normalised
    /// direction* `η ≈ A⁻¹ b / ‖A⁻¹ b‖` (quantum solvers only give the
    /// direction; the norm is recovered classically, Remark 2), together with
    /// the ancilla post-selection success probability.
    ///
    /// In circuit mode the compiled-once QSVT circuit is reused — no
    /// per-solve recompilation (see [`QsvtInverter::solve_direction_uncached`]
    /// for the retained pre-compile-once baseline).
    pub fn solve_direction(&self, b: &Vector<f64>) -> Result<(Vector<f64>, f64), QsvtError> {
        self.solve_direction_with(b, false)
    }

    /// [`QsvtInverter::solve_direction`] through the **uncached** circuit
    /// application path: the QSVT circuit is re-walked and recompiled on this
    /// very call, exactly as every solve did before the compile-once engine
    /// existed.  Retained (like `qls_sim::kernels::reference`) as the
    /// baseline the `bench_json` perf trajectory measures the compile-once
    /// path against, and as the oracle for the equivalence tests.  Identical
    /// to [`QsvtInverter::solve_direction`] in emulation mode.
    pub fn solve_direction_uncached(
        &self,
        b: &Vector<f64>,
    ) -> Result<(Vector<f64>, f64), QsvtError> {
        self.solve_direction_with(b, true)
    }

    fn solve_direction_with(
        &self,
        b: &Vector<f64>,
        uncached: bool,
    ) -> Result<(Vector<f64>, f64), QsvtError> {
        assert_eq!(b.len(), self.matrix.nrows(), "dimension mismatch");
        let mut b_normalised = b.clone();
        let norm = b_normalised.normalize();
        if norm == 0.0 {
            // Zero right-hand sides never run the device (and so never tick
            // an attached injector's run counter).
            return Ok((Vector::zeros(b.len()), 1.0));
        }
        let raw = match self.mode {
            QsvtMode::Emulation => {
                let mut raw = self.apply_emulated(&b_normalised);
                // Emulation never materialises a register; the injector
                // degrades the ideal output direction instead, modelling the
                // same device run.
                if let Some(inj) = &self.fault {
                    lock_injector(inj).apply_to_direction(raw.as_mut_slice())?;
                }
                raw
            }
            // The uncached baseline is the retained oracle: always ideal.
            QsvtMode::CircuitReal if uncached => self.apply_circuit_uncached(&b_normalised)?,
            QsvtMode::CircuitReal => self.apply_circuit(&b_normalised)?,
        };
        normalise_direction(raw)
    }

    /// Apply the QSVT inversion to **many** right-hand sides at once, reusing
    /// the one compiled circuit across the whole batch.  In circuit mode the
    /// registers fan out across threads through
    /// `qls_sim::QuantumExecutor::run_batch` (coarse-grained, one register
    /// per worker); results are identical to mapping
    /// [`QsvtInverter::solve_direction`] over the inputs in order.
    pub fn solve_direction_batch(
        &self,
        bs: &[Vector<f64>],
    ) -> Result<Vec<(Vector<f64>, f64)>, QsvtError> {
        self.solve_direction_batch_checked(bs).into_iter().collect()
    }

    /// [`QsvtInverter::solve_direction_batch`] with a **per-system verdict**:
    /// one failed post-selection or injected fault no longer takes down the
    /// whole multi-RHS batch — the affected slot carries its own error and
    /// every other system still returns its direction.
    pub fn solve_direction_batch_checked(
        &self,
        bs: &[Vector<f64>],
    ) -> Vec<Result<(Vector<f64>, f64), QsvtError>> {
        if self.mode == QsvtMode::Emulation {
            return bs.iter().map(|b| self.solve_direction(b)).collect();
        }
        let art = match self.artefacts() {
            Ok(art) => art,
            Err(e) => return bs.iter().map(|_| Err(e.clone())).collect(),
        };
        // Normalise every right-hand side; zero inputs have a fixed result
        // and must not enter the batch (`nonzero` remembers which slot each
        // executed register belongs to).
        let mut nonzero: Vec<bool> = Vec::with_capacity(bs.len());
        let mut states: Vec<StateVector> = Vec::with_capacity(bs.len());
        for b in bs {
            assert_eq!(b.len(), self.matrix.nrows(), "dimension mismatch");
            let mut b_normalised = b.clone();
            let norm = b_normalised.normalize();
            nonzero.push(norm != 0.0);
            if norm != 0.0 {
                states.push(self.embed(art, &b_normalised));
            }
        }
        let verdicts = art.executor.run_batch_checked(&mut states);
        let mut ran = states.into_iter().zip(verdicts);
        nonzero
            .into_iter()
            .map(|has_state| {
                if has_state {
                    let Some((state, verdict)) = ran.next() else {
                        return Err(QsvtError::Internal("one executed register per input"));
                    };
                    verdict?;
                    normalise_direction(self.project_readout(art, state))
                } else {
                    Ok((Vector::zeros(self.matrix.nrows()), 1.0))
                }
            })
            .collect()
    }

    /// Emulation path: `V P(Σ/α) Wᵀ v` through the classical SVD of `A`
    /// (the ideal output of the QSVT circuit applied to the block-encoding of
    /// `A†/α`).
    fn apply_emulated(&self, v: &Vector<f64>) -> Vector<f64> {
        let alpha = self.alpha;
        let series = &self.polynomial.series;
        // QSVT of A† with odd polynomial: output = V P(Σ/α) Wᵀ v.
        self.svd
            .apply_function(v, |sigma| series.eval(sigma / alpha), true)
    }

    /// Embed a unit-norm data vector on `|0⟩_anc ⊗ |v⟩` through the shared
    /// `qls_encoding` embedding (data low, ancillas high, no normalisation
    /// pass — the input is already a unit vector).
    fn embed(&self, art: &CircuitArtefacts, v: &Vector<f64>) -> StateVector {
        let total = art.qsvt.num_data_qubits() + art.qsvt.num_ancilla_qubits();
        let data: Vec<Complex64> = v.iter().map(|&x| Complex64::new(x, 0.0)).collect();
        qls_encoding::block_encoding::embed_data(&data, total)
    }

    /// Post-select the ancillas (precomputed index list) and read out the
    /// real data-register amplitudes.
    fn project_readout(&self, art: &CircuitArtefacts, mut state: StateVector) -> Vector<f64> {
        qls_encoding::block_encoding::project_data(
            &mut state,
            art.qsvt.num_data_qubits(),
            &art.ancillas,
        )
        .iter()
        .map(|c| c.re)
        .collect()
    }

    /// Circuit path: run the **pre-compiled** QSVT circuit on
    /// `|0⟩_anc ⊗ |v⟩` and project the ancillas back onto `|0⟩`.  Runs
    /// through the fault-checked executor path (identical to the plain path
    /// when no injector is attached).
    fn apply_circuit(&self, v: &Vector<f64>) -> Result<Vector<f64>, QsvtError> {
        let art = self.artefacts()?;
        let mut state = self.embed(art, v);
        art.executor.run_in_place_checked(&mut state)?;
        Ok(self.project_readout(art, state))
    }

    /// The pre-compile-once circuit path, kept as the old per-solve
    /// behaviour: normalisation pass on entry, circuit recompiled inside
    /// `apply_circuit`, ancilla index list rebuilt.  Baseline only — see
    /// [`QsvtInverter::solve_direction_uncached`].
    fn apply_circuit_uncached(&self, v: &Vector<f64>) -> Result<Vector<f64>, QsvtError> {
        let art = self.artefacts()?;
        let n = art.qsvt.num_data_qubits();
        let total = n + art.qsvt.num_ancilla_qubits();
        let dim = 1usize << n;
        let mut amps = vec![Complex64::new(0.0, 0.0); 1usize << total];
        for i in 0..dim {
            amps[i] = Complex64::new(v[i], 0.0);
        }
        let mut sv = StateVector::from_amplitudes(amps);
        sv.apply_circuit(art.qsvt.circuit());
        sv.project_zeros(&(n..total).collect::<Vec<_>>());
        Ok((0..dim).map(|i| sv.amplitudes()[i].re).collect())
    }

    /// The relative forward error `‖x̂ − A⁻¹b‖ / ‖A⁻¹b‖` of the direction this
    /// inverter produces for a given right-hand side (diagnostic; uses the
    /// exact SVD solution as reference).
    pub fn direction_error(&self, b: &Vector<f64>) -> Result<f64, QsvtError> {
        let (direction, _) = self.solve_direction(b)?;
        let mut exact = self.svd.pseudo_solve(b, 1e-14);
        let exact_norm = exact.normalize();
        if exact_norm == 0.0 {
            return Ok(direction.norm2());
        }
        // Directions can differ by a global sign only if the polynomial were
        // negative; it is positive on the domain, so compare directly.
        Ok((&direction - &exact).norm2())
    }
}

/// Normalise a raw QSVT output into the solution direction and the ancilla
/// post-selection success probability `‖P(A†/α) b̂‖²`.
///
/// Guards the readout boundary: a non-finite output (e.g. a NaN-poisoned
/// register from an injected fault) is reported as
/// [`QsvtError::NonFiniteOutput`] here, where it entered, instead of leaking
/// NaN into downstream norm comparisons — NaN fails every `==`/`>` test, so
/// without this guard a poisoned register would sail through the zero-norm
/// check below and corrupt the refinement loop silently.
fn normalise_direction(mut direction: Vector<f64>) -> Result<(Vector<f64>, f64), QsvtError> {
    if !direction.iter().all(|v| v.is_finite()) {
        return Err(QsvtError::NonFiniteOutput);
    }
    let out_norm = direction.normalize();
    let success = out_norm * out_norm;
    if out_norm == 0.0 {
        return Err(QsvtError::PostSelectionFailed);
    }
    Ok((direction, success))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_linalg::generate::{
        random_matrix_with_cond, MatrixEnsemble, SingularValueDistribution,
    };
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn test_system(kappa: f64, n: usize, seed: u64) -> (Matrix<f64>, Vector<f64>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let a = random_matrix_with_cond(
            n,
            kappa,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::General,
            &mut rng,
        );
        let b = qls_linalg::generate::random_unit_vector(n, &mut rng);
        (a, b)
    }

    #[test]
    fn emulated_inversion_reaches_requested_accuracy() {
        for &(kappa, eps_l) in &[(5.0, 1e-2), (10.0, 1e-2), (10.0, 1e-4), (50.0, 1e-3)] {
            let (a, b) = test_system(kappa, 16, 131);
            let inverter = QsvtInverter::new(&a, eps_l, QsvtMode::Emulation).unwrap();
            let err = inverter.direction_error(&b).unwrap();
            // The certified worst case is eps_l * kappa; typical inputs land
            // near eps_l itself.
            assert!(
                err < eps_l * kappa,
                "kappa = {kappa}, eps_l = {eps_l}: direction error {err}"
            );
            assert!(err < 20.0 * eps_l, "typical-case error too large: {err}");
        }
    }

    #[test]
    fn looser_accuracy_means_lower_degree() {
        let (a, _) = test_system(20.0, 8, 132);
        let coarse = QsvtInverter::new(&a, 1e-1, QsvtMode::Emulation).unwrap();
        let fine = QsvtInverter::new(&a, 1e-6, QsvtMode::Emulation).unwrap();
        assert!(coarse.resources().degree < fine.resources().degree);
        assert!(coarse.resources().block_encoding_calls < fine.resources().block_encoding_calls);
    }

    #[test]
    fn direction_is_normalised_and_success_probability_sensible() {
        let (a, b) = test_system(10.0, 8, 133);
        let inverter = QsvtInverter::new(&a, 1e-3, QsvtMode::Emulation).unwrap();
        let (direction, success) = inverter.solve_direction(&b).unwrap();
        assert!((direction.norm2() - 1.0).abs() < 1e-12);
        assert!(success > 0.0 && success <= 1.0 + 1e-12);
    }

    #[test]
    fn circuit_mode_matches_emulation_for_small_kappa() {
        // kappa = 2 keeps the polynomial degree small enough for the full
        // phase-factor + circuit pipeline.
        let (a, b) = test_system(2.0, 4, 134);
        let emulated = QsvtInverter::new(&a, 0.05, QsvtMode::Emulation).unwrap();
        let circuit = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
        let (dir_e, _) = emulated.solve_direction(&b).unwrap();
        let (dir_c, _) = circuit.solve_direction(&b).unwrap();
        assert!(
            (&dir_e - &dir_c).norm2() < 1e-6,
            "circuit and emulation disagree by {}",
            (&dir_e - &dir_c).norm2()
        );
        // Both solve the system to the requested accuracy.
        assert!(circuit.direction_error(&b).unwrap() < 0.1);
        // Circuit-mode resources include a gate-level estimate.
        let res = circuit.resources();
        assert!(res.circuit_estimate.is_some());
        assert_eq!(res.block_encoding_calls, 2 * res.degree);
    }

    #[test]
    fn compile_once_path_matches_uncached_baseline() {
        // The compile-once solve must agree with the retained pre-refactor
        // per-call path to 1e-12 on random systems (it skips the input
        // normalisation round trip, so the float ops differ slightly).
        for seed in [137, 138, 139] {
            let (a, b) = test_system(2.0, 4, seed);
            let inverter = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
            let (dir_fast, succ_fast) = inverter.solve_direction(&b).unwrap();
            let (dir_slow, succ_slow) = inverter.solve_direction_uncached(&b).unwrap();
            assert!(
                (&dir_fast - &dir_slow).norm2() < 1e-12,
                "seed {seed}: compiled vs uncached direction differ by {}",
                (&dir_fast - &dir_slow).norm2()
            );
            assert!((succ_fast - succ_slow).abs() < 1e-12);
        }
    }

    #[test]
    fn fused_circuit_halves_op_count_and_matches_unfused_solver() {
        // The optimizer must collapse the real QSVT inversion circuit
        // (projector-phase blocks fuse into the block-encoding products) by
        // at least 2x, and the fused solve must agree with both the
        // unoptimized compile-once engine and the fully uncached oracle.
        for seed in [137, 141] {
            let (a, b) = test_system(2.0, 4, seed);
            let fused = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
            let stats = fused.circuit_stats().expect("fusion stats in circuit mode");
            assert!(
                stats.op_reduction() >= 2.0,
                "seed {seed}: expected >= 2x op reduction on the QSVT circuit, got {:.2}x \
                 ({} -> {} ops)",
                stats.op_reduction(),
                stats.raw_ops,
                stats.fused_ops
            );
            let unfused =
                QsvtInverter::with_opt_level(&a, 0.05, QsvtMode::CircuitReal, OptLevel::None)
                    .unwrap();
            assert!(unfused.circuit_stats().is_none());
            let (dir_fused, succ_fused) = fused.solve_direction(&b).unwrap();
            let (dir_raw, succ_raw) = unfused.solve_direction(&b).unwrap();
            let (dir_oracle, _) = fused.solve_direction_uncached(&b).unwrap();
            assert!(
                (&dir_fused - &dir_raw).norm2() < 1e-12,
                "seed {seed}: fused vs unfused directions differ by {}",
                (&dir_fused - &dir_raw).norm2()
            );
            assert!((succ_fused - succ_raw).abs() < 1e-12);
            assert!((&dir_fused - &dir_oracle).norm2() < 1e-12);
        }
    }

    #[test]
    fn solve_direction_never_recompiles() {
        let (a, b) = test_system(2.0, 4, 140);
        let inverter = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
        let before = qls_sim::circuit_compile_count();
        for _ in 0..3 {
            inverter.solve_direction(&b).unwrap();
        }
        inverter
            .solve_direction_batch(&[b.clone(), b.clone()])
            .unwrap();
        assert_eq!(
            qls_sim::circuit_compile_count(),
            before,
            "solve_direction / solve_direction_batch must reuse the compiled circuit"
        );
        // The uncached baseline, by contrast, compiles per call.
        inverter.solve_direction_uncached(&b).unwrap();
        assert_eq!(qls_sim::circuit_compile_count(), before + 1);
    }

    #[test]
    fn batched_directions_match_sequential_solves() {
        for mode in [QsvtMode::Emulation, QsvtMode::CircuitReal] {
            let (a, _) = test_system(2.0, 4, 145);
            let mut rng = ChaCha8Rng::seed_from_u64(146);
            let bs: Vec<Vector<f64>> = (0..5)
                .map(|_| qls_linalg::generate::random_unit_vector(4, &mut rng))
                .collect();
            let inverter = QsvtInverter::new(&a, 0.05, mode).unwrap();
            let batched = inverter.solve_direction_batch(&bs).unwrap();
            assert_eq!(batched.len(), bs.len());
            for (b, (dir_b, succ_b)) in bs.iter().zip(&batched) {
                let (dir_s, succ_s) = inverter.solve_direction(b).unwrap();
                assert!(
                    (dir_b - &dir_s).norm2() < 1e-14,
                    "mode {mode:?}: batched direction deviates"
                );
                assert!((succ_b - succ_s).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn batch_handles_zero_right_hand_side() {
        let (a, b) = test_system(2.0, 4, 147);
        let inverter = QsvtInverter::new(&a, 0.05, QsvtMode::CircuitReal).unwrap();
        let zero = Vector::zeros(4);
        let results = inverter
            .solve_direction_batch(&[b.clone(), zero, b.clone()])
            .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(results[1].0.norm2(), 0.0);
        assert_eq!(results[1].1, 1.0);
        let (dir, _) = inverter.solve_direction(&b).unwrap();
        assert!((&results[0].0 - &dir).norm2() < 1e-14);
        assert!((&results[2].0 - &dir).norm2() < 1e-14);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_diag(&[1.0, 0.0]);
        assert!(matches!(
            QsvtInverter::new(&a, 1e-2, QsvtMode::Emulation),
            Err(QsvtError::SingularMatrix)
        ));
    }

    #[test]
    fn symmetric_positive_definite_system() {
        let mut rng = ChaCha8Rng::seed_from_u64(135);
        let a = random_matrix_with_cond(
            16,
            30.0,
            SingularValueDistribution::Geometric,
            MatrixEnsemble::SymmetricPositiveDefinite,
            &mut rng,
        );
        let b = qls_linalg::generate::random_unit_vector(16, &mut rng);
        let inverter = QsvtInverter::new(&a, 1e-3, QsvtMode::Emulation).unwrap();
        assert!(inverter.direction_error(&b).unwrap() < 2e-3);
    }

    #[test]
    fn poisson_system_direction() {
        let a = qls_linalg::poisson_1d::<f64>(16, false).to_dense();
        let mut rng = ChaCha8Rng::seed_from_u64(136);
        let b = qls_linalg::generate::random_unit_vector(16, &mut rng);
        let inverter = QsvtInverter::new(&a, 1e-2, QsvtMode::Emulation).unwrap();
        let err = inverter.direction_error(&b).unwrap();
        assert!(err < 2e-2, "Poisson direction error {err}");
    }
}
