//! # qls-qsvt
//!
//! The Quantum Singular Value Transformation (QSVT) layer of the
//! reproduction: everything between "a block-encoding of `A†` exists" and
//! "a vector proportional to `A⁻¹ b` comes out".
//!
//! * [`qsp`] — scalar Quantum Signal Processing: the single-qubit model whose
//!   polynomial the QSVT lifts to matrices, used to define and verify phase
//!   factors.
//! * [`phases`] — symmetric-QSP phase-factor computation (the paper's Ref.
//!   [13] route, used for small condition numbers).
//! * [`circuit`] — the QSVT operator of Eqs. (2)–(3): alternating
//!   block-encoding calls and projector-controlled phase rotations, plus the
//!   real-part extraction ancilla.
//! * [`solve`] — [`QsvtInverter`]: applies the Eq. (4) matrix-inversion
//!   polynomial to a right-hand side, either through the full simulated
//!   circuit or through the ideal-output emulation path used for the
//!   convergence experiments (see DESIGN.md).

pub mod circuit;
pub mod phases;
pub mod qsp;
pub mod solve;

pub use circuit::QsvtCircuit;
pub use phases::{
    find_phases, find_phases_cached, phase_generation_count, PhaseError, PhaseFindingOptions,
    QspPhases,
};
pub use qsp::{qsp_polynomial, qsp_real_polynomial, qsp_unitary};
pub use solve::{QsvtError, QsvtInverter, QsvtMode, QsvtResources};
