//! Scalar Quantum Signal Processing (QSP).
//!
//! QSVT phase factors are defined through the single-qubit QSP model: for a
//! phase vector `Φ = (φ_0, …, φ_d)` and a signal `x ∈ [-1, 1]`, the product
//!
//! ```text
//! U_Φ(x) = e^{iφ_0 Z} · W(x) e^{iφ_1 Z} · W(x) e^{iφ_2 Z} ⋯ W(x) e^{iφ_d Z},
//! W(x) = [[x, i√(1-x²)], [i√(1-x²), x]]
//! ```
//!
//! has `⟨0|U_Φ(x)|0⟩ = P(x)` for a degree-`d` complex polynomial `P`, and the
//! QSVT circuit built from the same phases applies `P` to every singular value
//! of the block-encoded operator.  The phase solver in [`crate::phases`]
//! targets the *real part* `Re P(x)`, which is the convention of the symmetric
//! QSP method the paper cites ([13]); these scalar routines are what the
//! solver iterates on and what the tests verify against.

use num_complex::Complex64;

/// A 2×2 complex matrix stored as `[[a, b], [c, d]]`.
pub type Mat2 = [[Complex64; 2]; 2];

fn mat2_mul(a: &Mat2, b: &Mat2) -> Mat2 {
    let mut out = [[Complex64::new(0.0, 0.0); 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            out[i][j] = a[i][0] * b[0][j] + a[i][1] * b[1][j];
        }
    }
    out
}

/// The signal operator `W(x)` (an X-rotation by `-2·arccos(x)` up to
/// convention), for `x ∈ [-1, 1]`.
pub fn signal_operator(x: f64) -> Mat2 {
    let x = x.clamp(-1.0, 1.0);
    let s = (1.0 - x * x).max(0.0).sqrt();
    [
        [Complex64::new(x, 0.0), Complex64::new(0.0, s)],
        [Complex64::new(0.0, s), Complex64::new(x, 0.0)],
    ]
}

/// The phase operator `e^{iφ Z} = diag(e^{iφ}, e^{-iφ})`.
pub fn phase_operator(phi: f64) -> Mat2 {
    [
        [Complex64::from_polar(1.0, phi), Complex64::new(0.0, 0.0)],
        [Complex64::new(0.0, 0.0), Complex64::from_polar(1.0, -phi)],
    ]
}

/// The full QSP unitary `U_Φ(x)` for `d = phases.len() - 1` applications of the
/// signal operator.
pub fn qsp_unitary(phases: &[f64], x: f64) -> Mat2 {
    assert!(!phases.is_empty(), "need at least one phase");
    let w = signal_operator(x);
    let mut u = phase_operator(phases[0]);
    for &phi in &phases[1..] {
        u = mat2_mul(&u, &w);
        u = mat2_mul(&u, &phase_operator(phi));
    }
    u
}

/// The complex QSP polynomial `P(x) = ⟨0|U_Φ(x)|0⟩`.
pub fn qsp_polynomial(phases: &[f64], x: f64) -> Complex64 {
    qsp_unitary(phases, x)[0][0]
}

/// The real part `Re ⟨0|U_Φ(x)|0⟩` targeted by the symmetric-QSP phase solver.
pub fn qsp_real_polynomial(phases: &[f64], x: f64) -> f64 {
    qsp_polynomial(phases, x).re
}

/// Degree of the polynomial realised by a phase vector (`len − 1`).
pub fn qsp_degree(phases: &[f64]) -> usize {
    phases.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_poly::chebyshev_t;

    fn is_unitary(m: &Mat2) -> bool {
        // Columns orthonormal.
        let c0 = (m[0][0].norm_sqr() + m[1][0].norm_sqr() - 1.0).abs();
        let c1 = (m[0][1].norm_sqr() + m[1][1].norm_sqr() - 1.0).abs();
        let dot = (m[0][0].conj() * m[0][1] + m[1][0].conj() * m[1][1]).norm();
        c0 < 1e-12 && c1 < 1e-12 && dot < 1e-12
    }

    #[test]
    fn signal_and_phase_operators_are_unitary() {
        for &x in &[-1.0, -0.3, 0.0, 0.7, 1.0] {
            assert!(is_unitary(&signal_operator(x)));
        }
        for &phi in &[0.0, 0.4, -1.2, std::f64::consts::PI] {
            assert!(is_unitary(&phase_operator(phi)));
        }
    }

    #[test]
    fn qsp_unitary_is_unitary() {
        let phases = [0.3, -0.2, 0.9, 0.1, -0.5];
        for i in 0..=20 {
            let x = -1.0 + 0.1 * i as f64;
            assert!(is_unitary(&qsp_unitary(&phases, x)), "x = {x}");
        }
    }

    #[test]
    fn zero_phases_give_chebyshev_polynomials() {
        // With all phases zero, U = W(x)^d and <0|U|0> = T_d(x).
        for d in 1..8usize {
            let phases = vec![0.0; d + 1];
            for i in 0..=20 {
                let x = -1.0 + 0.1 * i as f64;
                let p = qsp_polynomial(&phases, x);
                assert!(
                    (p.re - chebyshev_t(d, x)).abs() < 1e-12,
                    "d = {d}, x = {x}: {} vs {}",
                    p.re,
                    chebyshev_t(d, x)
                );
            }
        }
    }

    #[test]
    fn trivial_phase_vector_realises_identity_signal() {
        // d = 1, phases (0, 0): P(x) = x.
        let phases = [0.0, 0.0];
        for i in 0..=10 {
            let x = -1.0 + 0.2 * i as f64;
            assert!((qsp_real_polynomial(&phases, x) - x).abs() < 1e-13);
        }
    }

    #[test]
    fn reference_phases_give_zero_real_part() {
        // Phases (π/4, 0, …, 0, π/4) give U00 = i·T_d(x): zero real part.
        for d in 1..6usize {
            let mut phases = vec![0.0; d + 1];
            phases[0] = std::f64::consts::FRAC_PI_4;
            phases[d] = std::f64::consts::FRAC_PI_4;
            for i in 0..=10 {
                let x = -1.0 + 0.2 * i as f64;
                assert!(
                    qsp_real_polynomial(&phases, x).abs() < 1e-12,
                    "d = {d}, x = {x}"
                );
            }
        }
    }

    #[test]
    fn polynomial_magnitude_bounded_by_one() {
        let phases = [1.0, -0.7, 0.2, 0.5, -0.1, 0.9];
        for i in 0..=50 {
            let x = -1.0 + 0.04 * i as f64;
            assert!(qsp_polynomial(&phases, x).norm() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn parity_of_realised_polynomial() {
        // d even → even polynomial, d odd → odd polynomial (in Re and Im).
        let even_phases = [0.2, -0.3, 0.2];
        let odd_phases = [0.1, 0.4, 0.4, 0.1];
        for i in 1..=10 {
            let x = 0.1 * i as f64;
            let pe = qsp_polynomial(&even_phases, x);
            let pe_neg = qsp_polynomial(&even_phases, -x);
            assert!((pe.re - pe_neg.re).abs() < 1e-12);
            let po = qsp_polynomial(&odd_phases, x);
            let po_neg = qsp_polynomial(&odd_phases, -x);
            assert!((po.re + po_neg.re).abs() < 1e-12);
        }
    }
}
