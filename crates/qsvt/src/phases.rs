//! Symmetric QSP phase-factor computation.
//!
//! Given a real target polynomial `f` with definite parity, degree `d` and
//! `|f(x)| ≤ 1` on [-1, 1] (for the linear solver, the normalised inverse
//! polynomial of Eq. (4)), find a *symmetric* phase vector
//! `Φ = (φ_0, …, φ_d)`, `φ_k = φ_{d−k}`, such that
//! `Re ⟨0|U_Φ(x)|0⟩ = f(x)`.
//!
//! This follows the approach the paper uses for small condition numbers
//! (its Ref. [13], Dong–Lin–Ni–Wang): symmetric QSP turns phase finding into a
//! square nonlinear system `F(ψ) = c`, where `ψ` is the reduced (half) phase
//! vector measured from the reference point `Φ* = (π/4, 0, …, 0, π/4)` and `c`
//! collects the Chebyshev coefficients of `f` with the right parity.  The
//! system is solved by a damped quasi-Newton iteration: the Jacobian is
//! evaluated by finite differences at the starting point (where it is
//! well-conditioned and ≈ 2·I up to ordering) and refreshed whenever
//! convergence stalls.  For the very high degrees needed by large condition
//! numbers the paper switches to the estimation method of its Ref. [32]; this
//! reproduction switches to the matrix-function emulation path instead (see
//! DESIGN.md), so the solver here only needs to be robust for moderate
//! degrees.

use crate::qsp::qsp_real_polynomial;
use qls_cache::{CachePolicy, CacheStore, FingerprintBuilder};
use qls_linalg::{LuFactorization, Matrix, Vector};
use qls_poly::{chebyshev_t, ChebyshevSeries, Parity};
use serde::{Deserialize, Serialize};
use std::cell::Cell;

/// Cache kind under which computed phase vectors are stored (see
/// [`find_phases_cached`] and the `qls-cache` crate docs for the
/// fingerprint scheme).
pub const PHASES_CACHE_KIND: &str = "qsvt-phases";
/// Entry-format version of the phase store; bump to orphan old entries.
pub const PHASES_CACHE_VERSION: u32 = 1;

thread_local! {
    /// Phase-factor generations performed by this thread, for cache-contract
    /// tests (mirrors `qls_sim::circuit_compile_count`).
    static PHASE_GENERATIONS: Cell<usize> = const { Cell::new(0) };
}

/// Number of phase-factor generations (actual quasi-Newton runs, cache hits
/// excluded) performed so far by the calling thread.  Read it around a code
/// region to verify the "warm construction never regenerates" contract.
pub fn phase_generation_count() -> usize {
    PHASE_GENERATIONS.with(|c| c.get())
}

/// Options for the phase solver.
#[derive(Debug, Clone, Copy)]
pub struct PhaseFindingOptions {
    /// Convergence tolerance on the coefficient residual (∞-norm).
    pub tolerance: f64,
    /// Maximum number of quasi-Newton iterations.
    pub max_iterations: usize,
    /// Step damping factor in (0, 1]; 1.0 = full steps.
    pub damping: f64,
    /// Refresh the finite-difference Jacobian when the residual decreases by
    /// less than this factor between iterations.
    pub stall_factor: f64,
}

impl Default for PhaseFindingOptions {
    fn default() -> Self {
        PhaseFindingOptions {
            tolerance: 1e-11,
            max_iterations: 200,
            damping: 1.0,
            stall_factor: 0.9,
        }
    }
}

/// Why phase finding failed.
#[derive(Debug, Clone, PartialEq)]
pub enum PhaseError {
    /// The target polynomial has no definite parity.
    MixedParity,
    /// The target exceeds 1 in magnitude on [-1, 1] (violates the QSP model).
    NotBounded {
        /// The measured maximum magnitude.
        max_abs: f64,
    },
    /// The iteration did not reach the tolerance.
    NotConverged {
        /// The final residual.
        residual: f64,
    },
    /// The target polynomial is empty.
    EmptyTarget,
}

impl std::fmt::Display for PhaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PhaseError::MixedParity => write!(f, "target polynomial has mixed parity"),
            PhaseError::NotBounded { max_abs } => {
                write!(
                    f,
                    "target polynomial reaches magnitude {max_abs} > 1 on [-1, 1]"
                )
            }
            PhaseError::NotConverged { residual } => {
                write!(
                    f,
                    "phase iteration did not converge (residual {residual:.3e})"
                )
            }
            PhaseError::EmptyTarget => write!(f, "target polynomial is empty"),
        }
    }
}

impl std::error::Error for PhaseError {}

/// A computed symmetric phase vector together with solver diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QspPhases {
    /// Full phase vector `(φ_0, …, φ_d)` in the Wx convention.
    pub phases: Vec<f64>,
    /// Final ∞-norm residual on the Chebyshev coefficients.
    pub residual: f64,
    /// Number of quasi-Newton iterations used.
    pub iterations: usize,
    /// Degree of the realised polynomial.
    pub degree: usize,
}

impl QspPhases {
    /// Maximum deviation `|Re⟨0|U_Φ(x)|0⟩ − f(x)|` over a uniform grid.
    pub fn verify_against(&self, target: &ChebyshevSeries, samples: usize) -> f64 {
        (0..samples)
            .map(|i| -1.0 + 2.0 * i as f64 / (samples - 1) as f64)
            .map(|x| (qsp_real_polynomial(&self.phases, x) - target.eval(x)).abs())
            .fold(0.0, f64::max)
    }
}

/// Internal helper: the reduced-phase → full-phase expansion around the
/// reference point `Φ* = (π/4, 0, …, 0, π/4)`.
fn expand_phases(reduced: &[f64], degree: usize) -> Vec<f64> {
    let mut full = vec![0.0; degree + 1];
    for (k, slot) in full.iter_mut().enumerate() {
        let idx = k.min(degree - k);
        *slot = reduced[idx];
    }
    full[0] += std::f64::consts::FRAC_PI_4;
    full[degree] += std::f64::consts::FRAC_PI_4;
    full
}

/// Internal helper shared by the solver: evaluate the parity-restricted
/// Chebyshev coefficients of `Re⟨0|U_Φ(x)|0⟩` for reduced phases `ψ`.
struct CoefficientMap {
    degree: usize,
    parity: usize,
    nodes: Vec<f64>,
    /// LU factorisation of the node/basis matrix `M[k][j] = T_{2j+parity}(x_k)`.
    basis_lu: LuFactorization<f64>,
}

impl CoefficientMap {
    fn new(degree: usize, parity: usize, dim: usize) -> Self {
        // Positive Chebyshev-type nodes, one per unknown coefficient.
        let nodes: Vec<f64> = (0..dim)
            .map(|k| ((2 * k + 1) as f64 * std::f64::consts::PI / (4.0 * dim as f64)).cos())
            .collect();
        let basis = Matrix::from_fn(dim, dim, |k, j| chebyshev_t(2 * j + parity, nodes[k]));
        let basis_lu = LuFactorization::new(&basis).expect("Chebyshev basis matrix is nonsingular");
        CoefficientMap {
            degree,
            parity,
            nodes,
            basis_lu,
        }
    }

    /// Coefficients (c_{parity}, c_{parity+2}, …) of a scalar function sampled
    /// at the solver nodes.
    fn project(&self, f: impl Fn(f64) -> f64) -> Vector<f64> {
        let samples: Vector<f64> = self.nodes.iter().map(|&x| f(x)).collect();
        self.basis_lu.solve(&samples).expect("basis solve")
    }

    /// F(ψ): coefficients realised by the reduced phases ψ.
    fn realised(&self, reduced: &[f64]) -> Vector<f64> {
        let full = expand_phases(reduced, self.degree);
        self.project(|x| qsp_real_polynomial(&full, x))
    }

    /// Finite-difference Jacobian of F at ψ.
    fn jacobian(&self, reduced: &[f64]) -> Matrix<f64> {
        let m = reduced.len();
        let h = 1e-6;
        let base = self.realised(reduced);
        let mut jac = Matrix::zeros(m, m);
        let mut perturbed = reduced.to_vec();
        for j in 0..m {
            perturbed[j] += h;
            let shifted = self.realised(&perturbed);
            perturbed[j] = reduced[j];
            for i in 0..m {
                jac[(i, j)] = (shifted[i] - base[i]) / h;
            }
        }
        jac
    }

    #[allow(dead_code)]
    fn parity(&self) -> usize {
        self.parity
    }
}

/// Find symmetric QSP phases realising the target Chebyshev series.
#[allow(unused_assignments)] // residual_norm's final write is intentionally unread
pub fn find_phases(
    target: &ChebyshevSeries,
    options: &PhaseFindingOptions,
) -> Result<QspPhases, PhaseError> {
    PHASE_GENERATIONS.with(|c| c.set(c.get() + 1));
    if target.is_empty() || target.coeffs.iter().all(|&c| c == 0.0) {
        return Err(PhaseError::EmptyTarget);
    }
    let degree = target.degree();
    let parity = degree % 2;
    match target.parity(1e-12) {
        Parity::Odd if parity == 1 => {}
        Parity::Even if parity == 0 => {}
        _ => return Err(PhaseError::MixedParity),
    }
    let max_abs = target.max_abs_on_interval(2001);
    if max_abs > 1.0 + 1e-9 {
        return Err(PhaseError::NotBounded { max_abs });
    }

    // Number of unknowns = number of parity-compatible coefficients up to d.
    let dim = degree / 2 + 1;
    let map = CoefficientMap::new(degree, parity, dim);

    // Target coefficients in the same (node-projected) representation.
    let c = map.project(|x| target.eval(x));

    // Quasi-Newton iteration from ψ = 0 (the zero polynomial).
    let mut reduced = vec![0.0f64; dim];
    let mut jac_lu =
        LuFactorization::new(&map.jacobian(&reduced)).map_err(|_| PhaseError::NotConverged {
            residual: f64::INFINITY,
        })?;
    #[allow(unused_assignments)]
    let mut residual_norm = f64::INFINITY;
    let mut iterations = 0usize;

    for it in 0..options.max_iterations {
        iterations = it;
        let realised = map.realised(&reduced);
        let residual = &realised - &c;
        let new_norm = residual.norm_inf();
        if new_norm <= options.tolerance {
            residual_norm = new_norm;
            break;
        }
        // Refresh the Jacobian when progress stalls.
        if new_norm > residual_norm * options.stall_factor {
            jac_lu = LuFactorization::new(&map.jacobian(&reduced))
                .map_err(|_| PhaseError::NotConverged { residual: new_norm })?;
        }
        residual_norm = new_norm;
        let step = jac_lu
            .solve(&residual)
            .map_err(|_| PhaseError::NotConverged { residual: new_norm })?;
        for (r, s) in reduced.iter_mut().zip(step.iter()) {
            *r -= options.damping * s;
        }
    }

    // Final residual check.
    let final_res = (&map.realised(&reduced) - &c).norm_inf();
    if final_res > options.tolerance * 10.0 {
        return Err(PhaseError::NotConverged {
            residual: final_res,
        });
    }

    Ok(QspPhases {
        phases: expand_phases(&reduced, degree),
        residual: final_res,
        iterations: iterations + 1,
        degree,
    })
}

/// The phase-cache key: the full coefficient vector by `f64` bit pattern
/// (which already encodes κ, ε and the degree for the solver's inversion
/// polynomial) plus every phase-finding option — the complete input set of
/// the pure function [`find_phases`].
fn phases_fingerprint(
    target: &ChebyshevSeries,
    options: &PhaseFindingOptions,
) -> qls_cache::Fingerprint {
    let mut b = FingerprintBuilder::new(PHASES_CACHE_KIND);
    b.write_f64_slice(&target.coeffs);
    b.write_f64(options.tolerance);
    b.write_usize(options.max_iterations);
    b.write_f64(options.damping);
    b.write_f64(options.stall_factor);
    b.finish()
}

/// [`find_phases`] behind the persistent artifact cache: a warm lookup
/// replays the cold run's exact phase vector (bit-identical, and
/// [`PhaseError`]-free since only successes are stored) without running the
/// quasi-Newton solver.  With [`CachePolicy::Disabled`] — or when no cache
/// directory resolves — this is exactly [`find_phases`].
pub fn find_phases_cached(
    target: &ChebyshevSeries,
    options: &PhaseFindingOptions,
    policy: CachePolicy,
) -> Result<QspPhases, PhaseError> {
    let store = match policy {
        CachePolicy::Enabled => CacheStore::open(),
        CachePolicy::Disabled => None,
    };
    let Some(store) = store else {
        return find_phases(target, options);
    };
    let key = phases_fingerprint(target, options);
    if let Some(phases) = store.load::<QspPhases>(PHASES_CACHE_KIND, PHASES_CACHE_VERSION, key) {
        return Ok(phases);
    }
    let phases = find_phases(target, options)?;
    store.store(PHASES_CACHE_KIND, PHASES_CACHE_VERSION, key, &phases);
    Ok(phases)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qls_poly::{interpolate, InversePolynomial};

    fn check_target(target: &ChebyshevSeries, tol: f64) -> QspPhases {
        let phases = find_phases(target, &PhaseFindingOptions::default()).expect("phase finding");
        let err = phases.verify_against(target, 801);
        assert!(err < tol, "verification error {err}");
        // Symmetry of the phase vector.
        let d = phases.degree;
        for k in 0..=d {
            assert!(
                (phases.phases[k] - phases.phases[d - k]).abs() < 1e-9,
                "phases not symmetric at {k}"
            );
        }
        phases
    }

    #[test]
    fn finds_phases_for_scaled_t1() {
        let target = ChebyshevSeries::new(vec![0.0, 0.6]);
        check_target(&target, 1e-9);
    }

    #[test]
    fn finds_phases_for_scaled_t3() {
        let target = ChebyshevSeries::new(vec![0.0, 0.0, 0.0, 0.55]);
        check_target(&target, 1e-9);
    }

    #[test]
    fn finds_phases_for_odd_combination() {
        let target = ChebyshevSeries::new(vec![0.0, 0.3, 0.0, -0.2, 0.0, 0.15]);
        check_target(&target, 1e-9);
    }

    #[test]
    fn finds_phases_for_even_polynomial() {
        let target = ChebyshevSeries::new(vec![0.1, 0.0, 0.4, 0.0, -0.25]);
        check_target(&target, 1e-9);
    }

    #[test]
    fn finds_phases_for_smooth_interpolated_function() {
        // 0.5·sin(2x) has odd parity; interpolate and symmetrise to odd degree 9.
        let raw = interpolate(|x: f64| 0.5 * (2.0 * x).sin(), 10);
        let mut coeffs = raw.coeffs.clone();
        for c in coeffs.iter_mut().step_by(2) {
            *c = 0.0;
        }
        let target = ChebyshevSeries::new(coeffs);
        check_target(&target, 1e-8);
    }

    #[test]
    fn finds_phases_for_inverse_polynomial_small_kappa() {
        // The normalised 1/(2κx) approximation for κ = 2 at modest accuracy has
        // a small enough degree for the circuit-path phase solver.
        let inv = InversePolynomial::new(2.0, 1e-2);
        let mut target = inv.series.clone();
        // Extra safety margin so |f| ≤ 1 holds strictly inside (-1/κ, 1/κ) too.
        target.scale(0.5);
        let phases = check_target(&target, 1e-7);
        assert_eq!(phases.degree, inv.degree());
        // The realised polynomial therefore approximates 0.5/(2κ x) on the domain.
        for i in 0..50 {
            let x = 0.5 + 0.5 * i as f64 / 49.0;
            let expected = 0.5 / (2.0 * 2.0 * x);
            assert!(
                (qsp_real_polynomial(&phases.phases, x) - expected).abs() < 2e-2,
                "x = {x}"
            );
        }
    }

    #[test]
    fn rejects_mixed_parity() {
        let target = ChebyshevSeries::new(vec![0.3, 0.3]);
        assert!(matches!(
            find_phases(&target, &PhaseFindingOptions::default()),
            Err(PhaseError::MixedParity)
        ));
    }

    #[test]
    fn rejects_unbounded_target() {
        let target = ChebyshevSeries::new(vec![0.0, 1.7]);
        match find_phases(&target, &PhaseFindingOptions::default()) {
            Err(PhaseError::NotBounded { max_abs }) => assert!(max_abs > 1.5),
            other => panic!("expected NotBounded, got {other:?}"),
        }
    }

    #[test]
    fn rejects_empty_target() {
        let target = ChebyshevSeries::new(vec![0.0, 0.0]);
        assert!(matches!(
            find_phases(&target, &PhaseFindingOptions::default()),
            Err(PhaseError::EmptyTarget)
        ));
    }

    #[test]
    fn reference_expansion_is_symmetric() {
        let full = expand_phases(&[0.1, 0.2, 0.3], 5);
        assert_eq!(full.len(), 6);
        assert!((full[0] - (0.1 + std::f64::consts::FRAC_PI_4)).abs() < 1e-15);
        assert!((full[5] - (0.1 + std::f64::consts::FRAC_PI_4)).abs() < 1e-15);
        assert_eq!(full[1], 0.2);
        assert_eq!(full[4], 0.2);
        assert_eq!(full[2], 0.3);
        assert_eq!(full[3], 0.3);
    }
}
