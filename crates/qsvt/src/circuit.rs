//! QSVT circuit construction (Eqs. (2)–(3) of the paper).
//!
//! Given a block-encoding `U` of `A/α` and a QSP phase vector, the QSVT
//! operator alternates `U`, `U†` and projector-controlled phase rotations
//! `e^{iφ(2Π−I)}`, where `Π` projects the block-encoding ancillas onto
//! `|0…0⟩`.  Inside every singular-value invariant subspace the sequence acts
//! exactly as the scalar QSP product of [`crate::qsp`], so the `⟨0|·|0⟩` block
//! of the circuit equals `P^{(SV)}(A/α)` for the complex QSP polynomial `P`.
//!
//! Because the phase solver targets the *real part* of `P`, the module also
//! provides the standard real-part extraction: one extra ancilla selects
//! between `U_Φ` and `U_{−Φ}` (whose polynomial is the complex conjugate), and
//! a Hadamard pair turns the pair into `(P + P̄)/2 = Re P`.
//!
//! Phase conventions: the public API takes phases in the **Wx convention**
//! (the one produced by [`crate::phases::find_phases`] and verified by
//! [`crate::qsp`]); the conversion to projector-rotation angles
//! (`ϑ_0 = φ_0 − π/4`, `ϑ_d = φ_d − π/4`, `ϑ_k = φ_k − π/2` inside, plus a
//! global phase of `d·π/2`) is applied internally.

use qls_encoding::BlockEncoding;
use qls_sim::{Circuit, Gate};

/// Append `e^{iφ(2Π−I)}` to the circuit, where `Π` projects `ancillas` onto
/// `|0…0⟩` (acts as `e^{iφ}` on that subspace and `e^{−iφ}` elsewhere).
fn append_projector_phase(circuit: &mut Circuit, ancillas: &[usize], phi: f64) {
    // Global e^{-iφ} on the whole register…
    circuit.gate(Gate::GlobalPhase(-phi), &[0]);
    // …then e^{+2iφ} on the ancilla-|0…0⟩ subspace.
    for &q in ancillas {
        circuit.x(q);
    }
    if ancillas.is_empty() {
        circuit.gate(Gate::GlobalPhase(2.0 * phi), &[0]);
    } else if ancillas.len() == 1 {
        circuit.controlled_gate(Gate::Phase(2.0 * phi), &[ancillas[0]], &[]);
        // A bare phase gate on the ancilla applies e^{2iφ} only when that
        // ancilla is |1⟩ (i.e. |0⟩ before the X conjugation) — exactly Π.
    } else {
        let (last, rest) = ancillas.split_last().unwrap();
        circuit.controlled_gate(Gate::Phase(2.0 * phi), &[*last], rest);
    }
    for &q in ancillas {
        circuit.x(q);
    }
}

/// The QSVT circuit `U_Φ` for a block-encoding and Wx-convention phases.
#[derive(Debug, Clone)]
pub struct QsvtCircuit {
    circuit: Circuit,
    num_data_qubits: usize,
    num_ancilla_qubits: usize,
    degree: usize,
    block_encoding_calls: usize,
}

impl QsvtCircuit {
    /// Build the plain QSVT sequence: the `⟨0|·|0⟩` block equals the *complex*
    /// QSP polynomial `P` applied to the singular values of `A/α`.
    pub fn new<B: BlockEncoding>(block_encoding: &B, wx_phases: &[f64]) -> Self {
        assert!(wx_phases.len() >= 2, "need at least degree-1 phases");
        let degree = wx_phases.len() - 1;
        let n = block_encoding.num_data_qubits();
        let a = block_encoding.num_ancilla_qubits();
        let total = n + a;
        let ancillas: Vec<usize> = (n..total).collect();

        // Convert Wx phases to projector-rotation angles.
        let mut theta: Vec<f64> = wx_phases.to_vec();
        theta[0] -= std::f64::consts::FRAC_PI_4;
        theta[degree] -= std::f64::consts::FRAC_PI_4;
        for t in theta.iter_mut().take(degree).skip(1) {
            *t -= std::f64::consts::FRAC_PI_2;
        }

        let be_circuit = block_encoding.circuit();
        let be_adjoint = be_circuit.adjoint();

        // Operator order: e^{iϑ_0(2Π−I)} · U · e^{iϑ_1(2Π−I)} · U† ⋯ U · e^{iϑ_d(2Π−I)};
        // in circuit (time) order the rightmost factor is applied first.
        let mut circuit = Circuit::new(total);
        append_projector_phase(&mut circuit, &ancillas, theta[degree]);
        for k in (0..degree).rev() {
            // Between phase k and phase k+1 sits the (degree−k)-th application
            // of the block-encoding, alternating U (for the application closest
            // to the rightmost phase) and U†.
            let application_index = degree - k; // 1-based
            if application_index % 2 == 1 {
                circuit.append(be_circuit);
            } else {
                circuit.append(&be_adjoint);
            }
            append_projector_phase(&mut circuit, &ancillas, theta[k]);
        }
        // Global phase i^{d} compensating the Wx ↔ reflection conversion.
        circuit.gate(
            Gate::GlobalPhase(degree as f64 * std::f64::consts::FRAC_PI_2),
            &[0],
        );

        QsvtCircuit {
            circuit,
            num_data_qubits: n,
            num_ancilla_qubits: a,
            degree,
            block_encoding_calls: degree,
        }
    }

    /// Build the real-part extraction circuit: one extra ancilla (the top
    /// qubit) selects between `U_Φ` and `U_{−Φ}`; post-selecting it on `|0⟩`
    /// together with the block-encoding ancillas yields the block
    /// `Re(P)^{(SV)}(A/α)` — the polynomial the phase solver targeted.
    pub fn with_real_part_extraction<B: BlockEncoding>(
        block_encoding: &B,
        wx_phases: &[f64],
    ) -> Self {
        let plus = QsvtCircuit::new(block_encoding, wx_phases);
        let neg_phases: Vec<f64> = wx_phases.iter().map(|&p| -p).collect();
        let minus = QsvtCircuit::new(block_encoding, &neg_phases);

        let inner_total = plus.num_data_qubits + plus.num_ancilla_qubits;
        let selector = inner_total; // new top qubit
        let total = inner_total + 1;

        let num_data_qubits = plus.num_data_qubits;
        let num_ancilla_qubits = plus.num_ancilla_qubits;
        let degree = plus.degree;
        let mut circuit = Circuit::new(total);
        circuit.h(selector);
        // Apply U_Φ when the selector is |0⟩ (X conjugation), U_{−Φ} when |1⟩.
        // The branch circuits move in (`into_controlled` + `append_owned`):
        // their degree-many block-encoding unitaries are megabytes of gate
        // payload that warm cache-replay construction must not re-clone.
        circuit.x(selector);
        circuit.append_owned(plus.circuit.into_controlled(&[selector]));
        circuit.x(selector);
        circuit.append_owned(minus.circuit.into_controlled(&[selector]));
        circuit.h(selector);

        QsvtCircuit {
            circuit,
            num_data_qubits,
            num_ancilla_qubits: num_ancilla_qubits + 1,
            degree,
            block_encoding_calls: 2 * degree,
        }
    }

    /// The underlying circuit (data qubits low, ancillas high).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Number of data qubits.
    pub fn num_data_qubits(&self) -> usize {
        self.num_data_qubits
    }

    /// Number of ancilla qubits that must be post-selected on `|0⟩`.
    pub fn num_ancilla_qubits(&self) -> usize {
        self.num_ancilla_qubits
    }

    /// Degree of the applied polynomial.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Number of calls to the block-encoding (and its adjoint) — the quantity
    /// the paper's complexity model counts (Remark 1: `d` calls).
    pub fn block_encoding_calls(&self) -> usize {
        self.block_encoding_calls
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phases::{find_phases, PhaseFindingOptions};
    use crate::qsp::qsp_polynomial;
    use num_complex::Complex64;
    use qls_encoding::DilationBlockEncoding;
    use qls_linalg::Matrix;
    use qls_poly::ChebyshevSeries;
    use qls_sim::circuit_unitary;

    /// Diagonal test matrix: the QSVT block must be P(d_i) on the diagonal.
    fn diagonal_block_encoding(diag: &[f64]) -> (DilationBlockEncoding, Matrix<f64>) {
        let a = Matrix::from_diag(diag);
        (DilationBlockEncoding::new(&a, 1.0), a)
    }

    fn qsvt_block(qsvt: &QsvtCircuit) -> qls_sim::CMatrix {
        let u = circuit_unitary(qsvt.circuit());
        let dim = 1usize << qsvt.num_data_qubits();
        u.block(0, 0, dim, dim)
    }

    #[test]
    fn zero_phase_vector_applies_chebyshev_polynomial() {
        // All-zero Wx phases realise P = T_d; on a diagonal matrix the block
        // must be diag(T_d(λ_i)).
        let (be, a) = diagonal_block_encoding(&[0.9, 0.4, -0.3, 0.05]);
        for d in [1usize, 2, 3, 5] {
            let phases = vec![0.0; d + 1];
            let qsvt = QsvtCircuit::new(&be, &phases);
            assert_eq!(qsvt.block_encoding_calls(), d);
            let block = qsvt_block(&qsvt);
            for (i, &lambda) in a.diag().iter().enumerate() {
                let expected = qls_poly::chebyshev_t(d, lambda);
                assert!(
                    (block[(i, i)] - Complex64::new(expected, 0.0)).norm() < 1e-10,
                    "d = {d}, λ = {lambda}: got {:?}, expected {expected}",
                    block[(i, i)]
                );
            }
        }
    }

    #[test]
    fn qsvt_block_matches_scalar_qsp_for_generic_phases() {
        let (be, a) = diagonal_block_encoding(&[0.8, 0.3, -0.6, 0.1]);
        let phases = vec![0.23, -0.51, 0.74, 0.11];
        let qsvt = QsvtCircuit::new(&be, &phases);
        let block = qsvt_block(&qsvt);
        for (i, &lambda) in a.diag().iter().enumerate() {
            let expected = qsp_polynomial(&phases, lambda);
            assert!(
                (block[(i, i)] - expected).norm() < 1e-10,
                "λ = {lambda}: got {:?}, expected {expected:?}",
                block[(i, i)]
            );
        }
        // Off-diagonal entries stay zero for a diagonal input.
        for i in 0..4 {
            for j in 0..4 {
                if i != j {
                    assert!(block[(i, j)].norm() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn qsvt_on_symmetric_matrix_matches_eigen_function() {
        // Non-diagonal symmetric matrix: block = P(A) in the eigenbasis.
        let a = Matrix::from_f64_slice(2, 2, &[0.5, 0.2, 0.2, -0.1]);
        let be = DilationBlockEncoding::new(&a, 1.0);
        let phases = vec![0.1, -0.3, 0.25, 0.1];
        let qsvt = QsvtCircuit::new(&be, &phases);
        let block = qsvt_block(&qsvt);
        // Compare against direct polynomial evaluation through the eigenbasis:
        // P(A) computed by applying the scalar QSP polynomial to the eigenvalues.
        let svd = qls_linalg::Svd::new(&a);
        // A is symmetric: A = U diag(±σ) Uᵀ with signs recovered from A·u = λ u.
        let mut expected = qls_sim::CMatrix::zeros(2, 2);
        for k in 0..2 {
            let u_col = svd.u.col(k);
            let au = a.matvec(&u_col);
            let lambda = u_col.dot(&au);
            let p = qsp_polynomial(&phases, lambda);
            for i in 0..2 {
                for j in 0..2 {
                    expected[(i, j)] += p * Complex64::new(u_col[i] * u_col[j], 0.0);
                }
            }
        }
        assert!(block.max_abs_diff(&expected) < 1e-9);
    }

    #[test]
    fn real_part_extraction_gives_target_polynomial() {
        // Phases found for an explicit odd target; the real-part circuit block
        // must reproduce the *target* (not the full complex P) on the spectrum.
        let target = ChebyshevSeries::new(vec![0.0, 0.4, 0.0, -0.3]);
        let phases = find_phases(&target, &PhaseFindingOptions::default()).unwrap();
        let (be, a) = diagonal_block_encoding(&[0.7, -0.2, 0.45, 0.9]);
        let qsvt = QsvtCircuit::with_real_part_extraction(&be, &phases.phases);
        assert_eq!(qsvt.block_encoding_calls(), 2 * phases.degree);
        let block = qsvt_block(&qsvt);
        for (i, &lambda) in a.diag().iter().enumerate() {
            let expected = target.eval(lambda);
            assert!(
                (block[(i, i)] - Complex64::new(expected, 0.0)).norm() < 1e-8,
                "λ = {lambda}: got {:?}, expected {expected}",
                block[(i, i)]
            );
        }
    }

    #[test]
    fn projector_phase_acts_as_expected() {
        // Single ancilla: e^{iφ(2Π−I)} = diag over the ancilla value.
        let mut c = Circuit::new(2);
        append_projector_phase(&mut c, &[1], 0.7);
        let u = circuit_unitary(&c);
        let expect_zero = Complex64::from_polar(1.0, 0.7);
        let expect_one = Complex64::from_polar(1.0, -0.7);
        // Ancilla = qubit 1: indices 0,1 have ancilla 0; indices 2,3 ancilla 1.
        assert!((u[(0, 0)] - expect_zero).norm() < 1e-12);
        assert!((u[(1, 1)] - expect_zero).norm() < 1e-12);
        assert!((u[(2, 2)] - expect_one).norm() < 1e-12);
        assert!((u[(3, 3)] - expect_one).norm() < 1e-12);
    }
}
