//! Determinism and equivalence-oracle tests for the fault-injection layer
//! ([`qls_sim::fault`]) wired through [`qls_sim::QuantumExecutor`]:
//!
//! * the checked execution paths with **no** injector (or an empty plan) are
//!   bit-identical to the plain `run*` family — the house oracle pattern;
//! * a seeded [`FaultPlan`] replays the *exact* same degradation on every
//!   fresh injector built from it, across single and batched execution;
//! * scheduled transients hit precisely the run index they name, and in a
//!   batch only the register executed at that index.

use num_complex::Complex64;
use qls_sim::{
    Circuit, FaultError, FaultInjector, FaultPlan, QuantumExecutor, StateVector, TransientKind,
};

fn circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.rz(0, 0.3).t(n - 1);
    c
}

fn inputs(n: usize, count: usize) -> Vec<StateVector> {
    (0..count)
        .map(|i| {
            let dim = 1usize << n;
            let amps: Vec<Complex64> = (0..dim)
                .map(|k| {
                    let x = ((k * 41 + i * 17) % 89) as f64 / 89.0 - 0.5;
                    Complex64::new(x, 0.25 - x / 3.0)
                })
                .collect();
            StateVector::from_amplitudes(amps)
        })
        .collect()
}

#[test]
fn checked_run_without_injector_is_bit_identical_to_plain_run() {
    let c = circuit(5);
    let exec = QuantumExecutor::new(&c);
    for input in inputs(5, 3) {
        let plain = exec.run(&input);
        let mut checked = input.clone();
        exec.run_in_place_checked(&mut checked).unwrap();
        assert_eq!(plain.amplitudes(), checked.amplitudes());
    }
}

#[test]
fn empty_plan_keeps_the_checked_path_on_the_oracle() {
    let c = circuit(5);
    let mut exec = QuantumExecutor::new(&c);
    let baseline: Vec<_> = inputs(5, 4).into_iter().map(|s| exec.run(&s)).collect();
    exec.attach_fault_injector(FaultInjector::shared(FaultPlan::new(7)));
    let mut batch = inputs(5, 4);
    for verdict in exec.run_batch_checked(&mut batch) {
        verdict.unwrap();
    }
    for (ideal, degraded) in baseline.iter().zip(&batch) {
        assert_eq!(ideal.amplitudes(), degraded.amplitudes());
    }
}

#[test]
fn seeded_plans_replay_identically_across_fresh_injectors() {
    let plan = FaultPlan::new(99)
        .with_amplitude_noise(1e-3)
        .with_readout_sign_flips(0.2);
    let c = circuit(5);

    let run_all = || {
        let mut exec = QuantumExecutor::new(&c);
        let injector = FaultInjector::shared(plan.clone());
        exec.attach_fault_injector(injector.clone());
        let mut states = inputs(5, 4);
        for verdict in exec.run_batch_checked(&mut states) {
            verdict.unwrap();
        }
        // Readout corruption draws from the same stream, after the runs.
        let mut readout = vec![0.25f64; 8];
        qls_sim::fault::lock_injector(&injector).corrupt_readout(&mut readout);
        (
            states
                .into_iter()
                .map(StateVector::into_amplitudes)
                .collect::<Vec<_>>(),
            readout,
        )
    };

    let (states_a, readout_a) = run_all();
    let (states_b, readout_b) = run_all();
    assert_eq!(states_a, states_b, "amplitude noise must replay exactly");
    assert_eq!(
        readout_a, readout_b,
        "readout corruption must replay exactly"
    );
    // And the noise actually did something relative to the ideal run.
    let ideal = QuantumExecutor::new(&c).run(&inputs(5, 4)[0]);
    assert_ne!(ideal.amplitudes(), states_a[0].as_slice());
}

#[test]
fn batched_and_sequential_checked_runs_agree() {
    // The batch path locks the injector once and walks the registers in
    // order, so it must consume the fault stream exactly like a sequential
    // loop of single checked runs.
    let plan = FaultPlan::new(41).with_amplitude_noise(5e-4);
    let c = circuit(5);

    let mut seq_exec = QuantumExecutor::new(&c);
    seq_exec.attach_fault_injector(FaultInjector::shared(plan.clone()));
    let mut sequential = inputs(5, 4);
    for state in &mut sequential {
        seq_exec.run_in_place_checked(state).unwrap();
    }

    let mut batch_exec = QuantumExecutor::new(&c);
    batch_exec.attach_fault_injector(FaultInjector::shared(plan));
    let mut batched = inputs(5, 4);
    for verdict in batch_exec.run_batch_checked(&mut batched) {
        verdict.unwrap();
    }

    for (s, b) in sequential.iter().zip(&batched) {
        assert_eq!(s.amplitudes(), b.amplitudes());
    }
}

#[test]
fn transients_hit_exactly_the_scheduled_run_in_a_batch() {
    let plan = FaultPlan::new(3).with_transient(2, TransientKind::InjectedError);
    let c = circuit(5);
    let mut exec = QuantumExecutor::new(&c);
    exec.attach_fault_injector(FaultInjector::shared(plan));
    let mut states = inputs(5, 5);
    let verdicts = exec.run_batch_checked(&mut states);
    for (i, verdict) in verdicts.iter().enumerate() {
        if i == 2 {
            assert_eq!(
                *verdict,
                Err(FaultError::InjectedTransient { run_index: 2 }),
                "register {i}"
            );
        } else {
            assert!(verdict.is_ok(), "register {i}");
        }
    }
}
