//! SIMD ↔ scalar bit-identity: the vectorized kernel bodies of
//! `qls_sim::simd` replicate the scalar loops' per-amplitude operation
//! order exactly, so compiled circuits must produce **bit-identical**
//! amplitudes (`==` on every `f64`, not "close") with the SIMD bodies on
//! or off.  These tests sweep random 1–10-qubit circuits mixing every
//! kernel class — dense single-qubit, diagonal, phase-shift, permutation,
//! k-qubit dense unitaries, each with random control sets — through both
//! the per-gate compiled path and the fused executor path, comparing
//! against the same run under [`with_scalar_kernels`].

use num_complex::Complex64;
use qls_sim::{
    with_scalar_kernels, CMatrix, Circuit, CompiledCircuit, Gate, OptLevel, QuantumExecutor,
    StateVector,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_1q_unitary(rng: &mut ChaCha8Rng) -> CMatrix {
    let rz1 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    let ry = Gate::Ry(rng.gen_range(-3.0..3.0)).matrix();
    let rz2 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    rz1.matmul(&ry).matmul(&rz2)
}

/// A dense k-qubit unitary (tensor products of random 1-qubit unitaries
/// with SWAP mixing so every matrix entry is generically nonzero).
fn random_dense_unitary(k: usize, rng: &mut ChaCha8Rng) -> CMatrix {
    let mut u = random_1q_unitary(rng);
    for _ in 1..k {
        u = u.kron(&random_1q_unitary(rng));
    }
    if k == 2 {
        u = u.matmul(&Gate::Swap.matrix());
        u = u.matmul(&random_1q_unitary(rng).kron(&random_1q_unitary(rng)));
    }
    u
}

fn distinct_qubits(n: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    let mut pool: Vec<usize> = (0..n).collect();
    (0..count)
        .map(|_| pool.swap_remove(rng.gen_range(0..pool.len())))
        .collect()
}

/// One random operation drawn from every kernel class, with a random
/// (possibly empty) control set so the controlled expand/run paths and the
/// uncontrolled sweeps are both exercised.
fn push_random_op(circ: &mut Circuit, n: usize, rng: &mut ChaCha8Rng) {
    let max_targets = n.min(3);
    let (gate, arity): (Gate, usize) = match rng.gen_range(0..10u32) {
        0 => (Gate::X, 1),
        1 => (Gate::H, 1),
        2 => (Gate::Ry(rng.gen_range(-3.0..3.0)), 1),
        3 => (Gate::Rz(rng.gen_range(-3.0..3.0)), 1),
        4 => (Gate::Phase(rng.gen_range(-3.0..3.0)), 1),
        5 => (
            [Gate::S, Gate::T, Gate::Z][rng.gen_range(0..3usize)].clone(),
            1,
        ),
        6 if n >= 2 => (Gate::Swap, 2),
        7 if max_targets >= 2 => {
            let k = rng.gen_range(2..=max_targets);
            (Gate::Unitary(random_dense_unitary(k, rng)), k)
        }
        _ => (Gate::Unitary(random_1q_unitary(rng)), 1),
    };
    let free = n - arity;
    let num_controls = if free == 0 {
        0
    } else {
        rng.gen_range(0..=free.min(2))
    };
    let qubits = distinct_qubits(n, arity + num_controls, rng);
    let (targets, controls) = qubits.split_at(arity);
    if controls.is_empty() {
        circ.gate(gate, targets);
    } else {
        circ.controlled_gate(gate, targets, controls);
    }
}

fn random_circuit(n: usize, len: usize, rng: &mut ChaCha8Rng) -> Circuit {
    let mut circ = Circuit::new(n);
    for _ in 0..len {
        push_random_op(&mut circ, n, rng);
    }
    circ
}

fn random_state(n: usize, rng: &mut ChaCha8Rng) -> StateVector {
    let amps: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    StateVector::from_amplitudes(amps)
}

#[test]
fn compiled_circuits_are_bit_identical_with_simd_on_or_off() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x51D0);
    for n in 1..=10usize {
        for _ in 0..4 {
            let circ = random_circuit(n, 4 + 3 * n, &mut rng);
            let initial = random_state(n, &mut rng);
            let compiled = CompiledCircuit::compile(&circ);
            let mut fast = initial.clone();
            compiled.apply(&mut fast);
            let mut slow = initial.clone();
            with_scalar_kernels(|| compiled.apply(&mut slow));
            assert_eq!(
                fast.amplitudes(),
                slow.amplitudes(),
                "SIMD ≠ scalar on n={n}: {circ:?}"
            );
        }
    }
}

#[test]
fn fused_executor_is_bit_identical_with_simd_on_or_off() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF05E);
    for n in 2..=10usize {
        let circ = random_circuit(n, 5 + 2 * n, &mut rng);
        let initial = random_state(n, &mut rng);
        // Build the executor under scalar kernels too: fusion must not
        // consult the SIMD switch (same fused op list either way).
        let exec = QuantumExecutor::new(&circ);
        let fast = exec.run(&initial);
        let slow = with_scalar_kernels(|| exec.run(&initial));
        assert_eq!(fast.amplitudes(), slow.amplitudes(), "fused n={n}");
    }
}

#[test]
fn unoptimized_path_stays_float_identical_to_the_seed_reference() {
    // OptLevel::None is the equivalence oracle: with SIMD on it must still
    // reproduce `StateVector::apply_circuit` exactly (the SIMD bodies
    // replicate the scalar operation order, and no fusion reorders gates).
    let mut rng = ChaCha8Rng::seed_from_u64(0x0A11);
    for n in 1..=8usize {
        let circ = random_circuit(n, 3 + 2 * n, &mut rng);
        let initial = random_state(n, &mut rng);
        let exec = QuantumExecutor::with_options(&circ, OptLevel::None);
        let via_exec = exec.run(&initial);
        let mut direct = initial.clone();
        direct.apply_circuit(&circ);
        assert_eq!(via_exec.amplitudes(), direct.amplitudes(), "raw n={n}");
    }
}
