//! Property tests: every specialized in-place kernel agrees with the seed's
//! retained generic gate-application path to 1e-12 on random circuits mixing
//! controlled/uncontrolled, diagonal, permutation and dense gates over 1–10
//! qubits, from random (normalised) start states.

use num_complex::Complex64;
use qls_sim::kernels::reference;
use qls_sim::{CMatrix, Circuit, CompiledCircuit, Gate, Operation, StateVector};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random dense 1-qubit unitary (product of the three rotation generators).
fn random_1q_unitary(rng: &mut ChaCha8Rng) -> CMatrix {
    let rz1 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    let ry = Gate::Ry(rng.gen_range(-3.0..3.0)).matrix();
    let rz2 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    rz1.matmul(&ry).matmul(&rz2)
}

/// A random dense k-qubit unitary built from tensor products of random
/// 1-qubit unitaries interleaved with SWAP mixing (unitary by construction,
/// dense enough to exercise every entry of the generic kernel).
fn random_dense_unitary(k: usize, rng: &mut ChaCha8Rng) -> CMatrix {
    let mut u = random_1q_unitary(rng);
    for _ in 1..k {
        u = u.kron(&random_1q_unitary(rng));
    }
    if k == 2 {
        u = u.matmul(&Gate::Swap.matrix());
        let v = random_1q_unitary(rng).kron(&random_1q_unitary(rng));
        u = u.matmul(&v);
    }
    u
}

/// Sample `count` distinct qubit indices from `0..n`.
fn distinct_qubits(n: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    assert!(count <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

/// Append one random operation, mixing every kernel class: identity, dense
/// single-qubit, diagonal, phase-shift, permutation (X/SWAP), dense k-qubit
/// unitaries — each with a random (possibly empty) control set.
fn push_random_op(circ: &mut Circuit, n: usize, rng: &mut ChaCha8Rng) {
    let max_targets = n.min(3);
    let (gate, arity): (Gate, usize) = match rng.gen_range(0..13u32) {
        0 => (Gate::I, 1),
        1 => (Gate::X, 1),
        2 => (Gate::Y, 1),
        3 => (Gate::Z, 1),
        4 => (Gate::H, 1),
        5 => (
            [Gate::S, Gate::Sdg, Gate::T, Gate::Tdg][rng.gen_range(0..4usize)].clone(),
            1,
        ),
        6 => (Gate::Rx(rng.gen_range(-3.0..3.0)), 1),
        7 => (Gate::Ry(rng.gen_range(-3.0..3.0)), 1),
        8 => (Gate::Rz(rng.gen_range(-3.0..3.0)), 1),
        9 => (Gate::Phase(rng.gen_range(-3.0..3.0)), 1),
        10 => (Gate::GlobalPhase(rng.gen_range(-3.0..3.0)), 1),
        11 if n >= 2 => (Gate::Swap, 2),
        12 if max_targets >= 2 => {
            let k = rng.gen_range(2..=max_targets);
            (Gate::Unitary(random_dense_unitary(k, rng)), k)
        }
        _ => (Gate::Unitary(random_1q_unitary(rng)), 1),
    };
    let free = n - arity;
    let num_controls = if free == 0 {
        0
    } else {
        // Bias towards 0–2 controls; occasionally more.
        rng.gen_range(0..=free.min(3))
    };
    let qubits = distinct_qubits(n, arity + num_controls, rng);
    let (targets, controls) = qubits.split_at(arity);
    circ.push(Operation::new(gate, targets.to_vec(), controls.to_vec()));
}

/// A random normalised start state (so 1e-12 is a meaningful tolerance).
fn random_state(n: usize, rng: &mut ChaCha8Rng) -> StateVector {
    let amps: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    StateVector::from_amplitudes(amps)
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (x - y).norm())
        .fold(0.0, f64::max)
}

#[test]
fn random_circuits_match_reference_on_1_to_10_qubits() {
    let mut rng = ChaCha8Rng::seed_from_u64(20260728);
    for n in 1..=10usize {
        for rep in 0..8 {
            let ops = 5 + 3 * n;
            let mut circ = Circuit::new(n);
            for _ in 0..ops {
                push_random_op(&mut circ, n, &mut rng);
            }
            let start = random_state(n, &mut rng);

            let mut fast = start.clone();
            fast.apply_circuit(&circ);
            let mut slow = start.clone();
            reference::apply_circuit(&mut slow, &circ);

            let diff = max_amp_diff(&fast, &slow);
            assert!(
                diff < 1e-12,
                "kernel dispatch deviates from the generic path by {diff} \
                 (n = {n}, rep = {rep}, {ops} ops)"
            );
        }
    }
}

#[test]
fn compiled_circuit_matches_reference_column_by_column() {
    // The compile-once/apply-many path of `circuit_unitary` must agree with
    // per-column generic application (catches any state carried between
    // applications, e.g. a stale scratch buffer).
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 5;
    let mut circ = Circuit::new(n);
    for _ in 0..25 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let compiled = CompiledCircuit::compile(&circ);
    for col in 0..1usize << n {
        let mut fast = StateVector::basis_state(n, col);
        compiled.apply(&mut fast);
        let mut slow = StateVector::basis_state(n, col);
        reference::apply_circuit(&mut slow, &circ);
        assert!(max_amp_diff(&fast, &slow) < 1e-12, "column {col} deviates");
    }
}

#[test]
fn unitarity_is_preserved_by_long_random_circuits() {
    // All specialized kernels are unitary maps, so norms must survive hundreds
    // of applications without drift beyond roundoff.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n = 6;
    let mut circ = Circuit::new(n);
    for _ in 0..300 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let mut sv = random_state(n, &mut rng);
    sv.apply_circuit(&circ);
    assert!((sv.norm() - 1.0).abs() < 1e-11);
}

#[test]
fn probability_of_one_matches_filtered_scan() {
    let mut rng = ChaCha8Rng::seed_from_u64(41);
    for n in 1..=8usize {
        let sv = random_state(n, &mut rng);
        for q in 0..n {
            let mask = 1usize << q;
            let expected: f64 = sv
                .amplitudes()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & mask != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            let got = sv.probability_of_one(q);
            assert!(
                (got - expected).abs() < 1e-13,
                "n = {n}, q = {q}: {got} vs {expected}"
            );
        }
    }
}

#[test]
fn apply_circuit_to_vector_is_linear_without_normalisation() {
    // The rewritten path must act linearly on arbitrary, non-normalised
    // inputs (no normalise/renormalise round trip).
    let mut rng = ChaCha8Rng::seed_from_u64(12);
    let n = 4;
    let mut circ = Circuit::new(n);
    for _ in 0..20 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let input: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)))
        .collect();
    let scale = Complex64::new(-2.5, 1.25);
    let scaled: Vec<Complex64> = input.iter().map(|a| a * scale).collect();

    let out = qls_sim::apply_circuit_to_vector(&circ, &input);
    let out_scaled = qls_sim::apply_circuit_to_vector(&circ, &scaled);
    for (a, b) in out.iter().zip(&out_scaled) {
        assert!((a * scale - b).norm() < 1e-11);
    }

    // And the zero vector maps to the zero vector.
    let zeros = qls_sim::apply_circuit_to_vector(&circ, &vec![Complex64::new(0.0, 0.0); 1 << n]);
    assert!(zeros.iter().all(|a| a.norm() == 0.0));
}
