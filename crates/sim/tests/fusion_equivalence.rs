//! Property tests of the circuit-optimizer pass: optimized execution
//! (fusion + diagonal merging, `OptLevel::Fuse`) must agree to 1e-12 with
//! the unoptimized oracle — both the seed's generic reference path and the
//! `OptLevel::None` compiled path — on random 1–10-qubit circuits mixing
//! controlled/uncontrolled, diagonal, permutation and dense gates, and the
//! optimization must happen exactly once, at construction.

use num_complex::Complex64;
use qls_sim::kernels::reference;
use qls_sim::{
    circuit_compile_count, CMatrix, Circuit, Gate, Operation, OptLevel, QuantumExecutor,
    StateVector,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A random dense 1-qubit unitary (product of the three rotation generators).
fn random_1q_unitary(rng: &mut ChaCha8Rng) -> CMatrix {
    let rz1 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    let ry = Gate::Ry(rng.gen_range(-3.0..3.0)).matrix();
    let rz2 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    rz1.matmul(&ry).matmul(&rz2)
}

/// A random dense k-qubit unitary (tensor products of 1-qubit unitaries,
/// SWAP-mixed for k = 2 so the generic kernel sees every entry).
fn random_dense_unitary(k: usize, rng: &mut ChaCha8Rng) -> CMatrix {
    let mut u = random_1q_unitary(rng);
    for _ in 1..k {
        u = u.kron(&random_1q_unitary(rng));
    }
    if k == 2 {
        u = u.matmul(&Gate::Swap.matrix());
        let v = random_1q_unitary(rng).kron(&random_1q_unitary(rng));
        u = u.matmul(&v);
    }
    u
}

fn distinct_qubits(n: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    assert!(count <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

/// Append one random operation covering every kernel class and fusion rule:
/// identities (must be dropped), diagonal chains (must merge), X-conjugation
/// patterns, dense 1–3-qubit unitaries, and random control sets (matching
/// and mismatching masks).
fn push_random_op(circ: &mut Circuit, n: usize, rng: &mut ChaCha8Rng) {
    let max_targets = n.min(3);
    let (gate, arity): (Gate, usize) = match rng.gen_range(0..13u32) {
        0 => (Gate::I, 1),
        1 => (Gate::X, 1),
        2 => (Gate::Y, 1),
        3 => (Gate::Z, 1),
        4 => (Gate::H, 1),
        5 => (
            [Gate::S, Gate::Sdg, Gate::T, Gate::Tdg][rng.gen_range(0..4usize)].clone(),
            1,
        ),
        6 => (Gate::Rx(rng.gen_range(-3.0..3.0)), 1),
        7 => (Gate::Ry(rng.gen_range(-3.0..3.0)), 1),
        8 => (Gate::Rz(rng.gen_range(-3.0..3.0)), 1),
        9 => (Gate::Phase(rng.gen_range(-3.0..3.0)), 1),
        10 => (Gate::GlobalPhase(rng.gen_range(-3.0..3.0)), 1),
        11 if n >= 2 => (Gate::Swap, 2),
        12 if max_targets >= 2 => {
            let k = rng.gen_range(2..=max_targets);
            (Gate::Unitary(random_dense_unitary(k, rng)), k)
        }
        _ => (Gate::Unitary(random_1q_unitary(rng)), 1),
    };
    let free = n - arity;
    let num_controls = if free == 0 {
        0
    } else {
        rng.gen_range(0..=free.min(3))
    };
    let qubits = distinct_qubits(n, arity + num_controls, rng);
    let (targets, controls) = qubits.split_at(arity);
    circ.push(Operation::new(gate, targets.to_vec(), controls.to_vec()));
}

fn random_state(n: usize, rng: &mut ChaCha8Rng) -> StateVector {
    let amps: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    StateVector::from_amplitudes(amps)
}

fn max_amp_diff(a: &StateVector, b: &StateVector) -> f64 {
    a.amplitudes()
        .iter()
        .zip(b.amplitudes())
        .map(|(x, y)| (x - y).norm())
        .fold(0.0, f64::max)
}

#[test]
fn optimized_execution_matches_both_oracles_on_random_circuits() {
    let mut rng = ChaCha8Rng::seed_from_u64(20260728);
    for n in 1..=10usize {
        for rep in 0..8 {
            let ops = 5 + 3 * n;
            let mut circ = Circuit::new(n);
            for _ in 0..ops {
                push_random_op(&mut circ, n, &mut rng);
            }
            let start = random_state(n, &mut rng);

            let fused = QuantumExecutor::with_options(&circ, OptLevel::Fuse);
            let raw = QuantumExecutor::with_options(&circ, OptLevel::None);
            let via_fused = fused.run(&start);
            let via_raw = raw.run(&start);
            let mut via_reference = start.clone();
            reference::apply_circuit(&mut via_reference, &circ);

            let d_ref = max_amp_diff(&via_fused, &via_reference);
            assert!(
                d_ref < 1e-12,
                "fused execution deviates from the generic reference by {d_ref} \
                 (n = {n}, rep = {rep}, {ops} ops)"
            );
            let d_raw = max_amp_diff(&via_fused, &via_raw);
            assert!(
                d_raw < 1e-12,
                "fused execution deviates from OptLevel::None by {d_raw} \
                 (n = {n}, rep = {rep}, {ops} ops)"
            );

            let stats = fused.stats().expect("fused engine reports stats");
            assert_eq!(stats.raw_ops, circ.len());
            assert!(
                stats.fused_ops <= stats.raw_ops,
                "the pass must never grow the op list ({} -> {})",
                stats.raw_ops,
                stats.fused_ops
            );
            assert_eq!(stats.fused_ops, fused.len());
        }
    }
}

#[test]
fn optimization_happens_once_at_construction_and_never_during_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let n = 6;
    let mut circ = Circuit::new(n);
    for _ in 0..40 {
        push_random_op(&mut circ, n, &mut rng);
    }

    let before = circuit_compile_count();
    let exec = QuantumExecutor::with_options(&circ, OptLevel::Fuse);
    assert_eq!(
        circuit_compile_count(),
        before + 1,
        "optimize + compile must count as exactly one circuit compilation"
    );

    let mut batch: Vec<StateVector> = (0..6).map(|i| StateVector::basis_state(n, i * 7)).collect();
    let _ = exec.run_zero();
    let _ = exec.run(&batch[0]);
    exec.run_batch(&mut batch);
    assert_eq!(
        circuit_compile_count(),
        before + 1,
        "run/run_batch must never re-optimize or recompile"
    );
}

#[test]
fn batched_fused_execution_is_bit_identical_to_single_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n = 7;
    let mut circ = Circuit::new(n);
    for _ in 0..30 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let exec = QuantumExecutor::new(&circ);
    let inputs: Vec<StateVector> = (0..5).map(|_| random_state(n, &mut rng)).collect();
    let mut batch = inputs.clone();
    exec.run_batch(&mut batch);
    for (b, input) in batch.iter().zip(&inputs) {
        assert_eq!(b.amplitudes(), exec.run(input).amplitudes());
    }
}

#[test]
fn circuit_unitary_agrees_with_reference_columns() {
    // `circuit_unitary` now rides the fused batch engine; it must still equal
    // the column-by-column generic reference to 1e-12.
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let n = 5;
    let mut circ = Circuit::new(n);
    for _ in 0..25 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let u = qls_sim::circuit_unitary(&circ);
    for col in 0..1usize << n {
        let mut sv = StateVector::basis_state(n, col);
        reference::apply_circuit(&mut sv, &circ);
        for (row, amp) in sv.amplitudes().iter().enumerate() {
            assert!(
                (u[(row, col)] - amp).norm() < 1e-12,
                "entry ({row}, {col}) deviates"
            );
        }
    }
}

#[test]
fn deep_diagonal_and_conjugation_chains_collapse() {
    // A projector-rotation-shaped workload (the QSVT inner loop): X-conjugated
    // controlled phases sandwiched between dense ops.  The whole phase block
    // must fuse away into O(1) ops per dense op.
    let n = 4;
    let mut circ = Circuit::new(n);
    for k in 0..50 {
        let phi = 0.1 * k as f64 - 2.0;
        circ.gate(Gate::GlobalPhase(-phi), &[0]);
        circ.x(n - 1);
        circ.phase(n - 1, 2.0 * phi);
        circ.x(n - 1);
        circ.h(k % (n - 1));
    }
    let exec = QuantumExecutor::new(&circ);
    let stats = exec.stats().unwrap();
    assert!(
        stats.op_reduction() >= 2.0,
        "expected >= 2x op reduction on the projector-phase workload, got {:.2}x \
         ({} -> {} ops)",
        stats.op_reduction(),
        stats.raw_ops,
        stats.fused_ops
    );
    let raw = QuantumExecutor::with_options(&circ, OptLevel::None);
    let start = random_state(n, &mut ChaCha8Rng::seed_from_u64(3));
    assert!(max_amp_diff(&exec.run(&start), &raw.run(&start)) < 1e-12);
}
