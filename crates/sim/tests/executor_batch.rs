//! Batched-execution regression tests for the compile-once engine
//! ([`qls_sim::QuantumExecutor`]): `run_batch` must produce amplitudes
//! **bit-identical** to a sequential loop of `run` at every worker count,
//! whether the batch fan-out engages (many registers, per-gate parallelism
//! off) or not (few registers / little work, per-gate parallelism as usual) —
//! and executing must never recompile.

use num_complex::Complex64;
use qls_sim::{
    circuit_compile_count, Circuit, Gate, QuantumExecutor, StateVector, PARALLEL_WORK_THRESHOLD,
};
use rayon::ThreadPoolBuilder;

/// A circuit exercising every kernel class on `n` qubits.
fn mixed_circuit(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1);
    }
    c.rz(0, 0.7)
        .t(n - 1)
        .x(2 % n)
        .swap(0, n - 1)
        .cry(n / 2, (n / 2 + 1) % n, -0.6);
    let h = Gate::H.matrix();
    let hh = h.kron(&h).matmul(&Gate::Swap.matrix());
    c.gate(Gate::Unitary(hh), &[0, n - 1]);
    c
}

fn batch_inputs(n: usize, count: usize) -> Vec<StateVector> {
    (0..count)
        .map(|i| {
            let dim = 1usize << n;
            // Deterministic non-trivial amplitudes, different per register.
            let amps: Vec<Complex64> = (0..dim)
                .map(|k| {
                    let x = ((k * 37 + i * 101) % 113) as f64 / 113.0 - 0.5;
                    let y = ((k * 53 + i * 29) % 97) as f64 / 97.0 - 0.5;
                    Complex64::new(x, y)
                })
                .collect();
            StateVector::from_amplitudes(amps)
        })
        .collect()
}

fn run_batch_with_threads(
    exec: &QuantumExecutor,
    inputs: &[StateVector],
    threads: usize,
) -> Vec<Vec<Complex64>> {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(|| {
            let mut batch = inputs.to_vec();
            exec.run_batch(&mut batch);
            batch
                .into_iter()
                .map(StateVector::into_amplitudes)
                .collect()
        })
}

#[test]
fn run_batch_is_bit_identical_to_sequential_runs_at_any_thread_count() {
    // Large enough that the batch fan-out engages: per-register work is
    // ops x free-indices, and 12 registers of a 10-qubit mixed circuit
    // comfortably clear PARALLEL_WORK_THRESHOLD in total.
    let n = 10;
    let circ = mixed_circuit(n);
    let exec = QuantumExecutor::new(&circ);
    let inputs = batch_inputs(n, 12);
    assert!(
        exec.compiled().work_estimate(1 << n) * inputs.len() >= PARALLEL_WORK_THRESHOLD,
        "batch must be above the fan-out threshold for this test to bite"
    );

    // Sequential reference: one register at a time, single-threaded.
    let reference: Vec<Vec<Complex64>> = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| {
            inputs
                .iter()
                .map(|s| exec.run(s).into_amplitudes())
                .collect()
        });

    for threads in [1, 2, 3, 8] {
        let batched = run_batch_with_threads(&exec, &inputs, threads);
        assert_eq!(
            reference, batched,
            "batched amplitudes differ from the sequential loop at {threads} threads"
        );
    }
}

#[test]
fn small_batches_below_threshold_also_match() {
    // Tiny work: the batch path falls back to the sequential loop (with
    // per-gate parallelism allowed) — results must still be identical.
    let n = 4;
    let circ = mixed_circuit(n);
    let exec = QuantumExecutor::new(&circ);
    let inputs = batch_inputs(n, 3);
    let reference: Vec<Vec<Complex64>> = inputs
        .iter()
        .map(|s| exec.run(s).into_amplitudes())
        .collect();
    for threads in [1, 4] {
        let batched = run_batch_with_threads(&exec, &inputs, threads);
        assert_eq!(reference, batched);
    }
}

#[test]
fn executing_never_compiles() {
    let circ = mixed_circuit(6);
    let before = circuit_compile_count();
    let exec = QuantumExecutor::new(&circ);
    assert_eq!(circuit_compile_count(), before + 1, "new() compiles once");

    let inputs = batch_inputs(6, 5);
    let mut batch = inputs.clone();
    let after_compile = circuit_compile_count();
    exec.run_batch(&mut batch);
    for s in &inputs {
        let _ = exec.run(s);
    }
    assert_eq!(
        circuit_compile_count(),
        after_compile,
        "run/run_batch must not recompile the circuit"
    );
}

#[test]
fn run_batch_vec_returns_states_in_order() {
    let circ = mixed_circuit(5);
    let exec = QuantumExecutor::new(&circ);
    let inputs = batch_inputs(5, 4);
    let outputs = exec.run_batch_vec(inputs.clone());
    for (input, output) in inputs.iter().zip(&outputs) {
        assert_eq!(exec.run(input).amplitudes(), output.amplitudes());
    }
}
