//! Thread-count regression tests: gate application must produce *identical*
//! results whatever the worker count, because the kernels partition the index
//! space without changing per-amplitude arithmetic (no reductions are
//! reordered).  The vendored rayon's `ThreadPoolBuilder::install` scopes the
//! fan-out width, so the parallel code paths are exercised deterministically
//! even on single-core CI machines.

use num_complex::Complex64;
use qls_sim::{CMatrix, Circuit, Gate, StateVector, PARALLEL_WORK_THRESHOLD};
use rayon::ThreadPoolBuilder;

/// A register wide enough that every kernel class crosses
/// [`PARALLEL_WORK_THRESHOLD`] and actually fans out.
fn wide_circuit() -> Circuit {
    // The lightest case is the singly-controlled SWAP/flip family at
    // 2^(n-2) free indices of one complex multiply each, so pick
    // n = log2(threshold) + 2.
    let n = (PARALLEL_WORK_THRESHOLD.trailing_zeros() as usize) + 2; // 18
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q); // dense single-qubit kernel
    }
    for q in 0..n - 1 {
        c.cx(q, q + 1); // controlled flip kernel
    }
    c.rz(0, 0.7) // diagonal kernel
        .t(n - 1) // phase-shift kernel
        .x(2) // flip kernel
        .swap(1, n - 2) // bit-swap kernel
        .cphase(0, n - 1, 1.1) // controlled phase-shift
        .cry(3, 4, -0.6); // controlled dense single-qubit
                          // Dense 2-qubit unitary -> generic kernel.
    let h = Gate::H.matrix();
    let hh = h.kron(&h).matmul(&Gate::Swap.matrix());
    c.gate(Gate::Unitary(hh.clone()), &[0, n - 1]);
    c.controlled_gate(Gate::Unitary(hh), &[2, 5], &[7]);
    c
}

fn run_with_threads(circ: &Circuit, threads: usize) -> Vec<Complex64> {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(|| StateVector::run(circ).into_amplitudes())
}

#[test]
fn results_are_identical_with_1_and_n_threads() {
    let circ = wide_circuit();
    let single = run_with_threads(&circ, 1);
    let machine = rayon::current_num_threads().max(2);
    for threads in [2, 3, machine, 8] {
        let multi = run_with_threads(&circ, threads);
        // Bitwise equality, not a tolerance: partitioning the index space must
        // not change a single operation's arithmetic.
        assert_eq!(
            single, multi,
            "amplitudes differ between 1 and {threads} threads"
        );
    }
}

#[test]
fn parallel_unitary_extraction_matches_single_thread() {
    let mut c = Circuit::new(4);
    c.h(0).cx(0, 1).cry(1, 2, 0.9).ccx(0, 2, 3).rz(3, -0.3);
    let u1 = ThreadPoolBuilder::new()
        .num_threads(1)
        .build()
        .expect("pool")
        .install(|| qls_sim::circuit_unitary(&c));
    let u4 = ThreadPoolBuilder::new()
        .num_threads(4)
        .build()
        .expect("pool")
        .install(|| qls_sim::circuit_unitary(&c));
    assert_eq!(
        u1.max_abs_diff(&u4),
        0.0,
        "circuit_unitary differs across thread counts"
    );
}

#[test]
fn vendored_rayon_reports_real_worker_count() {
    // The stand-in must no longer be hardwired to 1: an installed pool's
    // width is visible to the kernels via current_num_threads().
    let pool = ThreadPoolBuilder::new()
        .num_threads(6)
        .build()
        .expect("pool");
    assert_eq!(pool.install(rayon::current_num_threads), 6);
}

#[test]
fn generic_kernel_parallel_path_uses_per_worker_scratch() {
    // A 3-qubit dense unitary on a wide register drives the generic kernel
    // over the parallel threshold (2^(n-3) blocks x 64 multiplies); the
    // per-worker scratch buffers must not alias.
    let n = (PARALLEL_WORK_THRESHOLD.trailing_zeros() as usize) - 2; // 14
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    let h = Gate::H.matrix();
    let m = h.kron(&h).kron(&h);
    c.gate(
        Gate::Unitary(CMatrix::from_fn(8, 8, |i, j| m[(i, j)])),
        &[0, 3, n - 1],
    );
    let single = run_with_threads(&c, 1);
    let multi = run_with_threads(&c, 4);
    assert_eq!(single, multi);
}
