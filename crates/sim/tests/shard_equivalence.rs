//! Property tests of the sharded execution engine (`qls_sim::shard`): the
//! sharded path must be **bit-identical** — `==` on amplitudes, not a
//! tolerance — to its flat compiled oracle on random 1–10-qubit circuits
//! mixing controlled/uncontrolled, diagonal, permutation and dense gates,
//! at shard counts 2/4/8, fused (`OptLevel::Fuse`, with the low-support
//! preference armed) and unfused (`OptLevel::None`), at any thread count —
//! including shard counts that exceed the worker count.

use num_complex::Complex64;
use qls_sim::{
    circuit_compile_count, CMatrix, Circuit, ExecMode, Gate, Operation, OptLevel, QuantumExecutor,
    ShardedCircuit, ShardedState, StateVector,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::ThreadPoolBuilder;

/// A random dense 1-qubit unitary (product of the three rotation generators).
fn random_1q_unitary(rng: &mut ChaCha8Rng) -> CMatrix {
    let rz1 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    let ry = Gate::Ry(rng.gen_range(-3.0..3.0)).matrix();
    let rz2 = Gate::Rz(rng.gen_range(-3.0..3.0)).matrix();
    rz1.matmul(&ry).matmul(&rz2)
}

/// A random dense k-qubit unitary (tensor products of 1-qubit unitaries,
/// SWAP-mixed for k = 2 so the generic kernel sees every entry).
fn random_dense_unitary(k: usize, rng: &mut ChaCha8Rng) -> CMatrix {
    let mut u = random_1q_unitary(rng);
    for _ in 1..k {
        u = u.kron(&random_1q_unitary(rng));
    }
    if k == 2 {
        u = u.matmul(&Gate::Swap.matrix());
        let v = random_1q_unitary(rng).kron(&random_1q_unitary(rng));
        u = u.matmul(&v);
    }
    u
}

fn distinct_qubits(n: usize, count: usize, rng: &mut ChaCha8Rng) -> Vec<usize> {
    assert!(count <= n);
    let mut pool: Vec<usize> = (0..n).collect();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let i = rng.gen_range(0..pool.len());
        out.push(pool.swap_remove(i));
    }
    out
}

/// Append one random operation covering every kernel class and both sides
/// of the shard boundary: diagonal chains, X/SWAP permutations, dense 1–3
/// qubit unitaries, and random control sets (controls count as support, so
/// a control on a high qubit must route through an exchange round too).
fn push_random_op(circ: &mut Circuit, n: usize, rng: &mut ChaCha8Rng) {
    let max_targets = n.min(3);
    let (gate, arity): (Gate, usize) = match rng.gen_range(0..13u32) {
        0 => (Gate::I, 1),
        1 => (Gate::X, 1),
        2 => (Gate::Y, 1),
        3 => (Gate::Z, 1),
        4 => (Gate::H, 1),
        5 => (
            [Gate::S, Gate::Sdg, Gate::T, Gate::Tdg][rng.gen_range(0..4usize)].clone(),
            1,
        ),
        6 => (Gate::Rx(rng.gen_range(-3.0..3.0)), 1),
        7 => (Gate::Ry(rng.gen_range(-3.0..3.0)), 1),
        8 => (Gate::Rz(rng.gen_range(-3.0..3.0)), 1),
        9 => (Gate::Phase(rng.gen_range(-3.0..3.0)), 1),
        10 => (Gate::GlobalPhase(rng.gen_range(-3.0..3.0)), 1),
        11 if n >= 2 => (Gate::Swap, 2),
        12 if max_targets >= 2 => {
            let k = rng.gen_range(2..=max_targets);
            (Gate::Unitary(random_dense_unitary(k, rng)), k)
        }
        _ => (Gate::Unitary(random_1q_unitary(rng)), 1),
    };
    let free = n - arity;
    let num_controls = if free == 0 {
        0
    } else {
        rng.gen_range(0..=free.min(3))
    };
    let qubits = distinct_qubits(n, arity + num_controls, rng);
    let (targets, controls) = qubits.split_at(arity);
    circ.push(Operation::new(gate, targets.to_vec(), controls.to_vec()));
}

fn random_state(n: usize, rng: &mut ChaCha8Rng) -> StateVector {
    let amps: Vec<Complex64> = (0..1usize << n)
        .map(|_| Complex64::new(rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)))
        .collect();
    StateVector::from_amplitudes(amps)
}

/// Shard counts to exercise for an `n`-qubit register: 2, 4, 8 where they
/// fit (a `2^n`-amplitude register cannot split into more than `2^n`
/// chunks).
fn shard_counts(n: usize) -> Vec<usize> {
    [2usize, 4, 8]
        .into_iter()
        .filter(|s| s.trailing_zeros() as usize <= n)
        .collect()
}

#[test]
fn sharded_execution_is_bit_identical_to_the_flat_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(20260808);
    for n in 1..=10usize {
        for rep in 0..6 {
            let ops = 5 + 3 * n;
            let mut circ = Circuit::new(n);
            for _ in 0..ops {
                push_random_op(&mut circ, n, &mut rng);
            }
            let start = random_state(n, &mut rng);
            for opt_level in [OptLevel::None, OptLevel::Fuse] {
                for shards in shard_counts(n) {
                    let exec = QuantumExecutor::with_exec_mode(
                        &circ,
                        opt_level,
                        ExecMode::Sharded { shards },
                    );
                    assert_eq!(exec.exec_mode(), ExecMode::Sharded { shards });
                    let via_sharded = exec.run(&start);
                    // The engine's own flat compiled form is the oracle: the
                    // *same* (possibly fused) op list, applied to one
                    // contiguous register.
                    let mut via_flat = start.clone();
                    exec.compiled().apply(&mut via_flat);
                    assert_eq!(
                        via_sharded.amplitudes(),
                        via_flat.amplitudes(),
                        "sharded != flat (n = {n}, rep = {rep}, shards = {shards}, \
                         {opt_level:?})"
                    );
                    let plan = exec.sharding().expect("sharded engine exposes its plan");
                    assert_eq!(plan.num_shards(), shards);
                    assert_eq!(
                        plan.len(),
                        plan.local_ops() + plan.exchanged_ops() + plan.flat_ops()
                    );
                }
            }
        }
    }
}

#[test]
fn sharded_execution_matches_the_unsharded_engine_to_roundoff() {
    // Across engines the fused op lists may differ (the sharded engine arms
    // the low-support preference), so this is the 1e-12 equivalence check
    // that complements the bit-identity oracle above.
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for n in [4usize, 7, 9] {
        let mut circ = Circuit::new(n);
        for _ in 0..4 * n {
            push_random_op(&mut circ, n, &mut rng);
        }
        let start = random_state(n, &mut rng);
        let flat = QuantumExecutor::new(&circ);
        for shards in shard_counts(n) {
            let sharded = QuantumExecutor::with_exec_mode(
                &circ,
                OptLevel::Fuse,
                ExecMode::Sharded { shards },
            );
            let d = flat
                .run(&start)
                .amplitudes()
                .iter()
                .zip(sharded.run(&start).amplitudes())
                .map(|(x, y)| (x - y).norm())
                .fold(0.0, f64::max);
            assert!(
                d < 1e-12,
                "sharded deviates from the flat fused engine by {d} (n = {n}, shards = {shards})"
            );
        }
    }
}

#[test]
fn shard_counts_exceeding_thread_count_stay_bit_identical() {
    // 8 shards on 1- and 2-worker pools: more chunks than workers must not
    // change a single bit (the fan-out never splits inside a chunk).
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let n = 9;
    let mut circ = Circuit::new(n);
    for _ in 0..30 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let start = random_state(n, &mut rng);
    let exec =
        QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Sharded { shards: 8 });
    let mut oracle = start.clone();
    exec.compiled().apply(&mut oracle);
    for threads in [1usize, 2, 4] {
        let via = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool")
            .install(|| exec.run(&start));
        assert_eq!(
            via.amplitudes(),
            oracle.amplitudes(),
            "sharded run differs from the flat oracle at {threads} threads"
        );
    }
}

#[test]
fn run_sharded_and_direct_plans_match_the_flat_path_bit_for_bit() {
    // The lower-level entry points: StateVector::run_sharded and a
    // hand-compiled ShardedCircuit applied to a ShardedState.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let n = 6;
    let mut circ = Circuit::new(n);
    for _ in 0..25 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let flat = StateVector::run(&circ);
    for shards in shard_counts(n) {
        assert_eq!(
            StateVector::run_sharded(&circ, shards).amplitudes(),
            flat.amplitudes()
        );
        let plan = ShardedCircuit::compile(&circ, n, shards);
        let mut state = ShardedState::zero_state(n, shards);
        plan.apply(&mut state);
        assert_eq!(state.into_state().amplitudes(), flat.amplitudes());
    }
}

#[test]
fn sharded_engine_compiles_at_construction_and_never_during_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(77);
    let n = 6;
    let mut circ = Circuit::new(n);
    for _ in 0..20 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let before = circuit_compile_count();
    let exec =
        QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Sharded { shards: 4 });
    assert_eq!(
        circuit_compile_count(),
        before + 2,
        "sharded construction compiles exactly twice: the flat oracle and the sharded plan"
    );
    let mut batch: Vec<StateVector> = (0..4).map(|i| StateVector::basis_state(n, i * 5)).collect();
    let _ = exec.run_zero();
    let _ = exec.run(&batch[0]);
    exec.run_batch(&mut batch);
    let mut sharded = ShardedState::zero_state(n, 4);
    exec.run_sharded_in_place(&mut sharded);
    assert_eq!(
        circuit_compile_count(),
        before + 2,
        "run/run_batch/run_sharded_in_place must never recompile"
    );
}

#[test]
fn batched_sharded_execution_is_bit_identical_to_single_runs() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let n = 7;
    let mut circ = Circuit::new(n);
    for _ in 0..24 {
        push_random_op(&mut circ, n, &mut rng);
    }
    let exec =
        QuantumExecutor::with_exec_mode(&circ, OptLevel::Fuse, ExecMode::Sharded { shards: 4 });
    let inputs: Vec<StateVector> = (0..5).map(|_| random_state(n, &mut rng)).collect();
    let mut batch = inputs.clone();
    exec.run_batch(&mut batch);
    for (b, input) in batch.iter().zip(&inputs) {
        assert_eq!(b.amplitudes(), exec.run(input).amplitudes());
    }
}
