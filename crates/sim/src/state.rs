//! State-vector representation and gate application.
//!
//! This is the quantum-hardware substitute: the paper's experiments run on the
//! myQLM state-vector simulator, and this module plays the same role.  The
//! state of an `n`-qubit register is the full vector of `2^n` complex
//! amplitudes.  Gates are applied **in place** through the compiled
//! specialized kernels of [`crate::kernels`] (dispatch table and parallelism
//! model documented there): [`StateVector::apply_circuit`] compiles each
//! operation once and dispatches to the cheapest kernel, and above the
//! parallel threshold the update fans out across real threads.

use crate::circuit::{Circuit, Operation};
use crate::kernels::{CompiledCircuit, CompiledOp};
use num_complex::Complex64;
use qls_linalg::Vector;

/// The state vector of an `n`-qubit register.
#[derive(Debug, Clone)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
    /// Reusable gather buffer for the generic k-qubit kernel (never observable
    /// through the public API; excluded from equality).
    scratch: Vec<Complex64>,
}

impl PartialEq for StateVector {
    fn eq(&self, other: &Self) -> bool {
        self.num_qubits == other.num_qubits && self.amps == other.amps
    }
}

impl StateVector {
    /// The all-zeros basis state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        Self::basis_state(num_qubits, 0)
    }

    /// The computational basis state `|index⟩`.
    pub fn basis_state(num_qubits: usize, index: usize) -> Self {
        assert!(index < (1 << num_qubits), "basis index out of range");
        let mut amps = vec![Complex64::new(0.0, 0.0); 1 << num_qubits];
        amps[index] = Complex64::new(1.0, 0.0);
        StateVector {
            num_qubits,
            amps,
            scratch: Vec::new(),
        }
    }

    /// Build a state from raw amplitudes (length must be a power of two);
    /// the amplitudes are normalised.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        let mut sv = Self::from_amplitudes_unchecked(amps);
        sv.normalize();
        sv
    }

    /// Build a state from raw amplitudes **without normalising** (length must
    /// be a power of two).  Gate application is linear, so this is the
    /// entry point for applying circuits to arbitrary (non-unit) vectors;
    /// callers that need a physical state must pass a unit-norm vector.
    pub fn from_amplitudes_unchecked(amps: Vec<Complex64>) -> Self {
        assert!(amps.len().is_power_of_two(), "amplitude count must be 2^n");
        let num_qubits = amps.len().trailing_zeros() as usize;
        StateVector {
            num_qubits,
            amps,
            scratch: Vec::new(),
        }
    }

    /// Reset in place to the computational basis state `|index⟩`, reusing the
    /// amplitude allocation (the hot loop of `circuit_unitary` resets the same
    /// register `2^n` times).
    pub fn reset_to_basis(&mut self, index: usize) {
        assert!(index < self.amps.len(), "basis index out of range");
        self.amps.fill(Complex64::new(0.0, 0.0));
        self.amps[index] = Complex64::new(1.0, 0.0);
    }

    /// Build a state whose amplitudes are the entries of a real vector,
    /// normalised (the encoding of the right-hand side `b/‖b‖` of the paper).
    pub fn from_real_vector(v: &Vector<f64>) -> Self {
        assert!(v.len().is_power_of_two(), "vector length must be 2^n");
        Self::from_amplitudes(v.iter().map(|&x| Complex64::new(x, 0.0)).collect())
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The amplitude vector.
    pub fn amplitudes(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable access to the amplitudes (used by tests and by post-selection).
    /// The length is fixed at `2^num_qubits` — only the values are writable.
    pub fn amplitudes_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Replace the whole amplitude vector without copying (the retained
    /// generic reference path rebuilds it per gate).  The length must match.
    pub(crate) fn set_amplitudes(&mut self, amps: Vec<Complex64>) {
        assert_eq!(amps.len(), self.amps.len(), "amplitude length must match");
        self.amps = amps;
    }

    /// Consume the state, returning the amplitude vector without copying.
    pub fn into_amplitudes(self) -> Vec<Complex64> {
        self.amps
    }

    /// Amplitudes plus the reusable kernel scratch buffer, for
    /// [`crate::kernels::CompiledCircuit::apply`].
    pub(crate) fn amps_and_scratch(&mut self) -> (&mut [Complex64], &mut Vec<Complex64>) {
        (&mut self.amps, &mut self.scratch)
    }

    /// Euclidean norm of the state (1 for a normalised state).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Normalise in place; returns the previous norm.
    pub fn normalize(&mut self) -> f64 {
        let n = self.norm();
        if n > 0.0 {
            let inv = 1.0 / n;
            for a in &mut self.amps {
                *a *= inv;
            }
        }
        n
    }

    /// Inner product `⟨self|other⟩`.
    pub fn inner(&self, other: &Self) -> Complex64 {
        assert_eq!(
            self.num_qubits, other.num_qubits,
            "inner: register size mismatch"
        );
        self.amps
            .iter()
            .zip(&other.amps)
            .map(|(a, b)| a.conj() * b)
            .sum()
    }

    /// Fidelity `|⟨self|other⟩|²` between two normalised states.
    pub fn fidelity(&self, other: &Self) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Probability of measuring the computational basis state `index`.
    pub fn probability(&self, index: usize) -> f64 {
        self.amps[index].norm_sqr()
    }

    /// All basis-state probabilities.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// The probability that qubit `q` is measured as `1`.
    ///
    /// Walks the set-bit stride directly — runs of `2^q` amplitudes starting
    /// at every odd multiple of `2^q` — touching exactly the `2^(n-1)` entries
    /// where the bit is set, instead of scanning and filtering all `2^n`.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        assert!(q < self.num_qubits, "qubit index out of range");
        let stride = 1usize << q;
        let mut sum = 0.0;
        let mut start = stride;
        while start < self.amps.len() {
            sum += self.amps[start..start + stride]
                .iter()
                .map(|a| a.norm_sqr())
                .sum::<f64>();
            start += stride << 1;
        }
        sum
    }

    /// Tensor product `self ⊗ other` (other occupies the *lower* qubit indices).
    pub fn tensor(&self, other: &Self) -> Self {
        let mut amps = vec![Complex64::new(0.0, 0.0); self.amps.len() * other.amps.len()];
        for (i, &a) in self.amps.iter().enumerate() {
            for (j, &b) in other.amps.iter().enumerate() {
                amps[(i << other.num_qubits) | j] = a * b;
            }
        }
        StateVector {
            num_qubits: self.num_qubits + other.num_qubits,
            amps,
            scratch: Vec::new(),
        }
    }

    /// Apply one operation in place through the specialized kernel dispatch
    /// (compiling the operation on the spot; batch callers should prefer
    /// [`StateVector::apply_circuit`] or a pre-built
    /// [`CompiledCircuit`](crate::kernels::CompiledCircuit)).
    pub fn apply_op(&mut self, op: &Operation) {
        let compiled = CompiledOp::compile(op, self.num_qubits);
        compiled.apply(&mut self.amps, &mut self.scratch);
    }

    /// Apply a whole circuit in place: each operation is compiled once into
    /// its specialized in-place kernel, then applied.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        CompiledCircuit::compile_for(circuit, self.num_qubits).apply(self);
    }

    /// Run a circuit on `|0…0⟩` and return the final state.
    pub fn run(circuit: &Circuit) -> Self {
        let mut sv = Self::zero_state(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// [`StateVector::run`] through the sharded engine ([`crate::shard`]):
    /// the register is split into `num_shards` worker-owned chunks and the
    /// circuit executes via per-shard sweeps and pairwise exchanges.
    /// Bit-identical to [`StateVector::run`] at every shard count.
    pub fn run_sharded(circuit: &Circuit, num_shards: usize) -> Self {
        use crate::shard::{ShardedCircuit, ShardedState};
        let plan = ShardedCircuit::compile(circuit, circuit.num_qubits(), num_shards);
        let mut sharded = ShardedState::zero_state(circuit.num_qubits(), num_shards);
        plan.apply(&mut sharded);
        sharded.into_state()
    }

    /// Project onto the subspace where the given qubits are all `|0⟩`,
    /// *without* renormalising.  Returns the probability mass kept.
    ///
    /// This is the post-selection on the block-encoding / QSVT ancillas: the
    /// "good" branch `|0⟩_a A|ψ⟩` of `U(|0⟩_a|ψ⟩)`.
    pub fn project_zeros(&mut self, qubits: &[usize]) -> f64 {
        let mask: usize = qubits.iter().map(|&q| 1usize << q).sum();
        let mut kept = 0.0;
        for (i, a) in self.amps.iter_mut().enumerate() {
            if i & mask != 0 {
                *a = Complex64::new(0.0, 0.0);
            } else {
                kept += a.norm_sqr();
            }
        }
        kept
    }

    /// Post-select the given qubits on `|0⟩` and renormalise, returning the
    /// success probability.  Returns `None` when the probability is (numerically)
    /// zero and the conditional state is undefined.
    pub fn postselect_zeros(&mut self, qubits: &[usize]) -> Option<f64> {
        let p = self.project_zeros(qubits);
        if p <= 1e-300 {
            return None;
        }
        let inv = 1.0 / p.sqrt();
        for a in &mut self.amps {
            *a *= inv;
        }
        Some(p)
    }

    /// Extract the state of the low `k` qubits assuming all other qubits are in
    /// `|0⟩` (panics in debug mode if that assumption is violated beyond `1e-10`).
    pub fn extract_low_qubits(&self, k: usize) -> Vec<Complex64> {
        let dim = 1usize << k;
        #[cfg(debug_assertions)]
        {
            let leaked: f64 = self
                .amps
                .iter()
                .enumerate()
                .filter(|(i, _)| *i >= dim)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            debug_assert!(
                leaked < 1e-10,
                "extract_low_qubits: {leaked} probability mass outside the low register"
            );
        }
        self.amps[..dim].to_vec()
    }

    /// The real parts of the amplitudes as a real vector (the readout used for
    /// real linear systems, where the solution amplitudes are real up to a
    /// global phase).
    pub fn real_amplitudes(&self) -> Vector<f64> {
        self.amps.iter().map(|a| a.re).collect()
    }

    /// Expectation value of a diagonal observable given by its values on the
    /// computational basis.
    pub fn expectation_diagonal(&self, values: &[f64]) -> f64 {
        assert_eq!(
            values.len(),
            self.amps.len(),
            "observable dimension mismatch"
        );
        self.amps
            .iter()
            .zip(values)
            .map(|(a, &v)| a.norm_sqr() * v)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn zero_state_and_basis_state() {
        let sv = StateVector::zero_state(3);
        assert_eq!(sv.amplitudes().len(), 8);
        assert_eq!(sv.probability(0), 1.0);
        let sv5 = StateVector::basis_state(3, 5);
        assert_eq!(sv5.probability(5), 1.0);
        assert!((sv5.norm() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn x_gate_flips_qubit() {
        let mut c = Circuit::new(2);
        c.x(0);
        let sv = StateVector::run(&c);
        // Little-endian: X on qubit 0 maps |00> -> |01> = index 1.
        assert!((sv.probability(1) - 1.0).abs() < 1e-14);

        let mut c2 = Circuit::new(2);
        c2.x(1);
        let sv2 = StateVector::run(&c2);
        assert!((sv2.probability(2) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn hadamard_creates_uniform_superposition() {
        let mut circ = Circuit::new(3);
        circ.h(0).h(1).h(2);
        let sv = StateVector::run(&circ);
        for i in 0..8 {
            assert!((sv.probability(i) - 0.125).abs() < 1e-14, "i = {i}");
        }
    }

    #[test]
    fn bell_state() {
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1);
        let sv = StateVector::run(&circ);
        assert!((sv.probability(0) - 0.5).abs() < 1e-14);
        assert!((sv.probability(3) - 0.5).abs() < 1e-14);
        assert!(sv.probability(1) < 1e-14);
        assert!(sv.probability(2) < 1e-14);
    }

    #[test]
    fn controlled_gate_only_acts_when_control_set() {
        // CX with control |0>: nothing happens.
        let mut circ = Circuit::new(2);
        circ.cx(0, 1);
        let sv = StateVector::run(&circ);
        assert!((sv.probability(0) - 1.0).abs() < 1e-14);
        // With the control flipped first, the target flips too.
        let mut circ2 = Circuit::new(2);
        circ2.x(0).cx(0, 1);
        let sv2 = StateVector::run(&circ2);
        assert!((sv2.probability(3) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn toffoli_truth_table() {
        for input in 0..8usize {
            let mut circ = Circuit::new(3);
            // Prepare |input> then apply CCX(0,1 -> 2).
            for q in 0..3 {
                if input & (1 << q) != 0 {
                    circ.x(q);
                }
            }
            circ.ccx(0, 1, 2);
            let sv = StateVector::run(&circ);
            let expected = if input & 0b11 == 0b11 {
                input ^ 0b100
            } else {
                input
            };
            assert!(
                (sv.probability(expected) - 1.0).abs() < 1e-13,
                "input {input}: expected {expected}"
            );
        }
    }

    #[test]
    fn swap_gate() {
        let mut circ = Circuit::new(2);
        circ.x(0).swap(0, 1);
        let sv = StateVector::run(&circ);
        assert!((sv.probability(2) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn circuit_followed_by_adjoint_is_identity() {
        let mut circ = Circuit::new(3);
        circ.h(0)
            .cx(0, 1)
            .t(2)
            .cry(1, 2, 0.7)
            .rz(0, 1.3)
            .ccx(0, 1, 2)
            .ry(1, -0.4);
        let mut sv = StateVector::zero_state(3);
        sv.apply_circuit(&circ);
        sv.apply_circuit(&circ.adjoint());
        let zero = StateVector::zero_state(3);
        assert!(sv.fidelity(&zero) > 1.0 - 1e-12);
    }

    #[test]
    fn norm_preserved_by_unitary_circuits() {
        let mut circ = Circuit::new(4);
        circ.h(0)
            .h(1)
            .cry(0, 2, 1.1)
            .ccx(1, 2, 3)
            .rz(3, 0.3)
            .swap(0, 3);
        let sv = StateVector::run(&circ);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_real_vector_encodes_normalised_amplitudes() {
        let v = Vector::from_f64_slice(&[1.0, 2.0, 2.0, 4.0]);
        let sv = StateVector::from_real_vector(&v);
        assert_eq!(sv.num_qubits(), 2);
        assert!((sv.norm() - 1.0).abs() < 1e-14);
        assert!((sv.probability(3) - 16.0 / 25.0).abs() < 1e-14);
    }

    #[test]
    fn tensor_product_structure() {
        let a = StateVector::basis_state(1, 1);
        let b = StateVector::basis_state(2, 2);
        let ab = a.tensor(&b); // a occupies the high qubit
        assert_eq!(ab.num_qubits(), 3);
        assert!((ab.probability(0b110) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn postselection_on_ancilla() {
        // (|0>+|1>)/sqrt(2) on qubit 1 (ancilla), |1> on qubit 0 (data).
        let mut circ = Circuit::new(2);
        circ.x(0).h(1);
        let mut sv = StateVector::run(&circ);
        let p = sv.postselect_zeros(&[1]).unwrap();
        assert!((p - 0.5).abs() < 1e-14);
        assert!((sv.probability(1) - 1.0).abs() < 1e-14);
        assert!((sv.norm() - 1.0).abs() < 1e-14);
    }

    #[test]
    fn postselection_with_zero_probability_fails() {
        let mut circ = Circuit::new(1);
        circ.x(0);
        let mut sv = StateVector::run(&circ);
        assert!(sv.postselect_zeros(&[0]).is_none());
    }

    #[test]
    fn probability_of_one_and_expectation() {
        let mut circ = Circuit::new(2);
        circ.h(0);
        let sv = StateVector::run(&circ);
        assert!((sv.probability_of_one(0) - 0.5).abs() < 1e-14);
        assert!(sv.probability_of_one(1) < 1e-14);
        // Z expectation on qubit 0 is 0 for |+>.
        let z_values: Vec<f64> = (0..4)
            .map(|i| if i & 1 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(sv.expectation_diagonal(&z_values).abs() < 1e-14);
    }

    #[test]
    fn phase_gate_is_diagonal() {
        let mut circ = Circuit::new(1);
        circ.h(0).phase(0, std::f64::consts::FRAC_PI_2);
        let sv = StateVector::run(&circ);
        // (|0> + i|1>)/sqrt(2).
        assert!((sv.amplitudes()[0] - c(std::f64::consts::FRAC_1_SQRT_2, 0.0)).norm() < 1e-14);
        assert!((sv.amplitudes()[1] - c(0.0, std::f64::consts::FRAC_1_SQRT_2)).norm() < 1e-14);
    }

    #[test]
    fn multi_qubit_unitary_gate() {
        use crate::cmatrix::CMatrix;
        // A 2-qubit unitary that swaps |00> and |11> (X⊗X restricted... actually
        // just use X⊗X as a single 4x4 unitary gate).
        let x = Gate::X.matrix();
        let xx = x.kron(&x);
        let mut circ = Circuit::new(2);
        circ.gate(
            Gate::Unitary(CMatrix::from_fn(4, 4, |i, j| xx[(i, j)])),
            &[0, 1],
        );
        let sv = StateVector::run(&circ);
        assert!((sv.probability(3) - 1.0).abs() < 1e-14);
    }

    #[test]
    fn extract_low_qubits_after_postselection() {
        let mut circ = Circuit::new(3);
        circ.h(0).cx(0, 1); // bell pair on data qubits 0,1; ancilla 2 stays |0>
        let sv = StateVector::run(&circ);
        let low = sv.extract_low_qubits(2);
        assert_eq!(low.len(), 4);
        assert!((low[0].norm_sqr() - 0.5).abs() < 1e-14);
        assert!((low[3].norm_sqr() - 0.5).abs() < 1e-14);
    }
}
