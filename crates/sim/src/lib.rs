//! # qls-sim
//!
//! A from-scratch state-vector quantum-circuit simulator.
//!
//! The paper's experiments run on the myQLM state-vector simulator (Python);
//! this crate is its Rust replacement for the reproduction: gates and circuits
//! ([`gate`], [`circuit`]), exact state-vector execution through compiled
//! in-place kernels ([`state`], [`kernels`]), dense-unitary extraction for
//! verification of block-encodings ([`unitary`]), shot sampling and
//! post-selection ([`measure`]), dense complex matrices ([`cmatrix`]), and
//! fault-tolerant resource estimates (T-count, depth, gate histograms —
//! [`resources`]), which the paper uses to express the quantum cost of its
//! Poisson use case (Table II).
//!
//! ## Performance model
//!
//! Gate application is the workspace-wide hot path, and it is organised
//! around two ideas (full dispatch table in [`kernels`]):
//!
//! 1. **Compile once, apply cheaply.**  [`CompiledCircuit::compile`] turns
//!    each operation into a [`CompiledOp`] — flattened matrix, control mask
//!    and target strides precomputed — classified into the cheapest kernel:
//!    diagonal/phase gates multiply amplitudes in place, X/SWAP permute them,
//!    dense single-qubit gates update `2^(n-1)` amplitude pairs, and only
//!    k-qubit `Gate::Unitary` falls back to a generic blocked mat-vec fed
//!    from a reusable scratch buffer.  Controlled variants enumerate just the
//!    control-satisfied subspace (`2^(n-c)` instead of `2^n` indices).
//! 2. **Real thread fan-out.**  Once one application carries at least
//!    [`PARALLEL_WORK_THRESHOLD`] complex multiplies of work (iteration
//!    count weighted by the kernel's per-iteration cost), the update is split
//!    into contiguous index blocks across `rayon::current_num_threads()`
//!    scoped threads (the vendored rayon is backed by `std::thread::scope`).
//!    Partitioning never reorders per-amplitude arithmetic, so results are
//!    bit-identical at every worker count
//!    (`rayon::ThreadPoolBuilder::install` pins the count in tests).
//!
//! 3. **Compile once, execute many.**  [`QuantumExecutor`] ([`executor`]) is
//!    the execution-engine layer the rest of the workspace builds on: it owns
//!    a [`CompiledCircuit`] compiled exactly once at construction and exposes
//!    `run`/`run_in_place` plus a batched `run_batch` that applies the one
//!    compiled circuit to many registers with **coarse-grained fan-out across
//!    the batch** (one register per worker, per-gate parallelism disabled
//!    inside the fan-out so threads never nest).  Construction compiles,
//!    execution never does; the thread-local
//!    [`kernels::circuit_compile_count`] counter makes that contract
//!    testable.
//!
//! 4. **Optimize before compiling.**  The circuit-optimizer pass ([`fuse`])
//!    rewrites the operation list ahead of compilation — runs of adjacent
//!    gates fuse into one dense sweep (combined target support capped at
//!    [`FusionOptions::max_fused_qubits`], uncapped when targets nest),
//!    diagonal/phase chains merge into a single table-driven diagonal, and
//!    identities vanish — so `m` gates become far fewer, denser kernel
//!    dispatches.  [`QuantumExecutor`] applies it by default
//!    ([`OptLevel::Fuse`]); `OptLevel::None` retains the one-`CompiledOp`-
//!    per-gate path as the equivalence oracle, and [`CircuitStats`] reports
//!    the before/after op counts and estimated sweep work.
//!
//! 5. **Shard past the one-allocation wall.**  [`shard`] splits the
//!    `2^n`-amplitude register at the shard boundary `m = n − k` into `2^k`
//!    worker-owned chunks ([`ShardedState`]): ops supported below the
//!    boundary run embarrassingly parallel per chunk with the *same*
//!    compiled kernels (SIMD bodies included), ops touching global qubits
//!    execute via pairwise shard exchanges (swap chunk halves with the
//!    partner shard, apply, swap back), batched so one exchange round
//!    serves a run of high-qubit ops.  [`QuantumExecutor`] exposes it as
//!    [`ExecMode::Sharded`]; the flat register remains the bit-identity
//!    oracle, and the fusion pass accepts a shard boundary
//!    ([`FusionOptions::with_shard_boundary`]) that prices exchange traffic
//!    so merged ops prefer low-qubit support and rounds are minimized.
//!    [`sharding_stats`] reports per-shard memory and exchange rounds for a
//!    circuit.
//!
//! The seed's original "rebuild the whole vector per gate" path survives as
//! `kernels::reference`, serving as the property-test oracle and the baseline
//! of the `BENCH_simulator.json` perf trajectory (`bench_json` binary).
//!
//! ## Fault injection
//!
//! The [`fault`] module supplies a seeded, deterministic degradation layer:
//! a declarative [`FaultPlan`] (Gaussian amplitude noise, scheduled transient
//! failures, readout sign corruption) executed by a [`FaultInjector`]
//! attachable to [`QuantumExecutor`].  Only the *checked* execution paths
//! (`run_in_place_checked`, `run_batch_checked`) consult it; the plain
//! `run*` family never degrades, so the no-fault configuration stays
//! bit-identical to the ideal simulator and serves as the equivalence
//! oracle for the robustness layer built on top (`qls-core`'s recovery
//! ladder).
//!
//! ## Qubit convention
//!
//! Qubit `q` is bit `q` of the basis-state index (little-endian).  Helper
//! methods on [`StateVector`] make the ancilla/data split used by
//! block-encodings explicit: data registers occupy the low qubits, ancillas
//! the high qubits.
//!
//! ## Example
//!
//! ```
//! use qls_sim::{Circuit, StateVector};
//!
//! // Prepare a Bell pair and check the outcome probabilities.
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cx(0, 1);
//! let state = StateVector::run(&circuit);
//! assert!((state.probability(0) - 0.5).abs() < 1e-12);
//! assert!((state.probability(3) - 0.5).abs() < 1e-12);
//! ```

pub mod circuit;
pub mod cmatrix;
pub mod executor;
pub mod fault;
pub mod fuse;
pub mod gate;
pub mod kernels;
pub mod measure;
pub mod resources;
pub mod shard;
pub mod simd;
pub mod state;
pub mod unitary;

pub use circuit::{Circuit, Operation};
pub use cmatrix::CMatrix;
pub use executor::{ExecMode, OptLevel, QuantumExecutor};
pub use fault::{
    FaultError, FaultEvent, FaultInjector, FaultPlan, SharedFaultInjector, TransientFault,
    TransientKind,
};
pub use fuse::{
    calibration_count, fusion_pass_count, optimize_circuit, optimize_circuit_for, CircuitStats,
    CostModel, FusionOptions,
};
pub use gate::Gate;
pub use kernels::{circuit_compile_count, CompiledCircuit, CompiledOp, PARALLEL_WORK_THRESHOLD};
pub use measure::{
    estimate_magnitudes, sample, shots_for_accuracy, signed_from_magnitudes, SampleResult,
};
pub use qls_cache::CachePolicy;
pub use resources::{
    estimate_resources, fusion_stats, sharding_stats, ResourceEstimate, ShardingStats, TCountModel,
};
pub use shard::{ShardedCircuit, ShardedState};
pub use simd::{simd_kernels_enabled, with_scalar_kernels};
pub use state::StateVector;
pub use unitary::{apply_circuit_to_vector, circuit_unitary};
