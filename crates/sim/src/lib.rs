//! # qls-sim
//!
//! A from-scratch state-vector quantum-circuit simulator.
//!
//! The paper's experiments run on the myQLM state-vector simulator (Python);
//! this crate is its Rust replacement for the reproduction: gates and circuits
//! ([`gate`], [`circuit`]), exact state-vector execution with rayon-parallel
//! amplitude updates ([`state`]), dense-unitary extraction for verification of
//! block-encodings ([`unitary`]), shot sampling and post-selection
//! ([`measure`]), dense complex matrices ([`cmatrix`]), and fault-tolerant
//! resource estimates (T-count, depth, gate histograms — [`resources`]),
//! which the paper uses to express the quantum cost of its Poisson use case
//! (Table II).
//!
//! ## Qubit convention
//!
//! Qubit `q` is bit `q` of the basis-state index (little-endian).  Helper
//! methods on [`StateVector`] make the ancilla/data split used by
//! block-encodings explicit: data registers occupy the low qubits, ancillas
//! the high qubits.
//!
//! ## Example
//!
//! ```
//! use qls_sim::{Circuit, StateVector};
//!
//! // Prepare a Bell pair and check the outcome probabilities.
//! let mut circuit = Circuit::new(2);
//! circuit.h(0).cx(0, 1);
//! let state = StateVector::run(&circuit);
//! assert!((state.probability(0) - 0.5).abs() < 1e-12);
//! assert!((state.probability(3) - 0.5).abs() < 1e-12);
//! ```

pub mod circuit;
pub mod cmatrix;
pub mod gate;
pub mod measure;
pub mod resources;
pub mod state;
pub mod unitary;

pub use circuit::{Circuit, Operation};
pub use cmatrix::CMatrix;
pub use gate::Gate;
pub use measure::{
    estimate_magnitudes, sample, shots_for_accuracy, signed_from_magnitudes, SampleResult,
};
pub use resources::{estimate_resources, ResourceEstimate, TCountModel};
pub use state::StateVector;
pub use unitary::{apply_circuit_to_vector, circuit_unitary};
