//! Compiled in-place gate-application kernels — the simulator hot path.
//!
//! Every end-to-end experiment in this workspace (HHL, QSVT solve,
//! block-encoding verification, the figure/table binaries) bottoms out in
//! applying gates to a `2^n`-amplitude state vector, so this module replaces
//! the generic "rebuild the whole vector per gate" path with specialized
//! kernels that update amplitudes **in place** and visit only the amplitudes
//! a gate can actually change.
//!
//! ## Compilation
//!
//! An [`Operation`] is compiled once into a [`CompiledOp`]: the gate matrix is
//! materialized and flattened a single time, the control mask and target
//! strides are precomputed, and the operation is classified into the cheapest
//! kernel that implements it.  [`CompiledCircuit`] does this for a whole
//! circuit so repeated executions (e.g. the `2^n` columns of
//! [`crate::unitary::circuit_unitary`]) pay compilation once.
//!
//! ## Kernel dispatch table
//!
//! | kernel | gates | work per application |
//! |--------|-------|----------------------|
//! | `Identity`    | `I` | none |
//! | `PhaseShift`  | `Z` `S` `S†` `T` `T†` `P(φ)` | `2^(n-c-1)` complex multiplies |
//! | `Diagonal`    | `Rz` `GlobalPhase` | `2^(n-c)` complex multiplies |
//! | `Flip`        | `X` (incl. `CX`/`CCX`/MCX) | `2^(n-c-1)` swaps |
//! | `SwapBits`    | `SWAP` | `2^(n-c-2)` swaps |
//! | `SingleQubit` | `H` `Y` `Rx` `Ry`, any dense 1-qubit unitary | `2^(n-c-1)` 2×2 updates (4 multiplies each) |
//! | `DiagonalK`   | diagonal k-qubit `Gate::Unitary` (fused phase chains) | `2^(n-c)` table-lookup multiplies |
//! | `Generic`     | dense k-qubit `Gate::Unitary` | `2^(n-c-k)` dense `2^k`×`2^k` mat-vecs |
//!
//! `n` = register qubits, `c` = number of controls, `k` = targets.  Controlled
//! variants enumerate only the control-satisfied subspace (the free indices
//! are expanded around the fixed control/target bit positions), so an
//! `m`-controlled gate costs `2^m` times *less* than its uncontrolled form
//! instead of paying a full-vector scan.
//!
//! ## Parallelism
//!
//! Kernels fan out over the free-index space with the (vendored, real
//! `std::thread`-backed) rayon adapters once a single application carries at
//! least [`PARALLEL_WORK_THRESHOLD`] complex multiplies of work (free-index
//! count × the kernel's per-iteration cost); below that the sequential
//! loop wins.  Distinct iteration indices always touch disjoint amplitude
//! pairs/blocks, which is what makes the in-place parallel update sound (see
//! `AmpPtr`).  The fan-out width follows `rayon::current_num_threads()`, so
//! `rayon::ThreadPoolBuilder::install` scopes it per call tree.
//!
//! The seed's original generic path is retained in [`reference`] as the
//! correctness oracle for the kernel property tests and as the baseline the
//! `bench_json` perf-trajectory binary measures speedups against.

use crate::circuit::{Circuit, Operation};
use crate::gate::Gate;
use crate::simd;
use crate::state::StateVector;
use num_complex::Complex64;
use rayon::prelude::*;
use std::cell::Cell;

thread_local! {
    /// Number of [`CompiledCircuit`] compilations performed by *this thread*.
    ///
    /// The counter is thread-local on purpose: compilation always happens on
    /// the thread that calls [`CompiledCircuit::compile_for`] (the kernel
    /// fan-out parallelises application, never compilation), so a test or
    /// bench can assert compile-once behaviour — "this solve performed zero
    /// recompilations" — without races against other test threads.
    static CIRCUIT_COMPILES: Cell<usize> = const { Cell::new(0) };
}

/// The number of circuit compilations ([`CompiledCircuit::compile`] /
/// [`CompiledCircuit::compile_for`]) performed so far by the calling thread.
///
/// Read it before and after a code region to verify a caching contract: the
/// compile-once engines ([`crate::executor::QuantumExecutor`] and everything
/// built on it) must not change this count during `run`/`run_batch`.
pub fn circuit_compile_count() -> usize {
    CIRCUIT_COMPILES.with(|c| c.get())
}

/// Record one circuit compilation performed outside [`CompiledCircuit`] —
/// the sharded plan builder ([`crate::shard::ShardedCircuit::compile`])
/// compiles per-shard kernels itself but honours the same compile-once
/// observability contract.
pub(crate) fn note_circuit_compile() {
    CIRCUIT_COMPILES.with(|c| c.set(c.get() + 1));
}

/// Minimum amount of work — measured in complex multiplies — in one gate
/// application before the update fans out across threads.  Each kernel
/// weights its free-index count by its per-iteration cost (1 for
/// diagonal/phase/permutation kernels, 4 for the single-qubit pair kernel,
/// `4^k` for the generic kernel), so light kernels need proportionally more
/// indices to justify a fan-out.  The value is deliberately conservative
/// because the vendored rayon spawns scoped threads per call (no pool):
/// 2^16 complex multiplies is a few hundred microseconds of work, comfortably
/// above the spawn/join overhead — the same reasoning as `PAR_THRESHOLD` in
/// `qls-linalg`.  A single-qubit gate crosses it on a 15-qubit register.
pub const PARALLEL_WORK_THRESHOLD: usize = 1 << 16;

const ZERO: Complex64 = Complex64::new(0.0, 0.0);

/// Insert zero bits at the (ascending) `fixed_bits` positions of `idx`,
/// spreading the remaining bits around them: maps a free-index in
/// `0..2^(n-f)` to the full-register index whose fixed bits are all 0.
#[inline]
fn expand(mut idx: usize, fixed_bits: &[usize]) -> usize {
    for &b in fixed_bits {
        let low = idx & ((1usize << b) - 1);
        idx = ((idx >> b) << (b + 1)) | low;
    }
    idx
}

/// Shared raw pointer into the amplitude buffer, used by the in-place
/// parallel kernels.
///
/// SAFETY: every kernel enumerates a free-index space in which **distinct
/// indices expand to disjoint sets of amplitude indices** (the fixed bits
/// partition the register), so concurrent workers never alias. The pointer
/// never outlives the `&mut [Complex64]` it was created from, and the scoped
/// threads it is shared with join before the borrow ends.
#[derive(Clone, Copy)]
struct AmpPtr(*mut Complex64);

unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

impl AmpPtr {
    /// Read the amplitude at `i`.  Caller must guarantee `i` is in bounds and
    /// not concurrently written (see the type-level safety argument).
    #[inline]
    unsafe fn get(&self, i: usize) -> Complex64 {
        *self.0.add(i)
    }

    /// Write the amplitude at `i` (same contract as [`AmpPtr::get`]).
    #[inline]
    unsafe fn set(&self, i: usize, v: Complex64) {
        *self.0.add(i) = v;
    }
}

/// Run `body` for every free index, fanning out across threads when the
/// caller determined the work justifies it (see [`PARALLEL_WORK_THRESHOLD`]).
#[inline]
fn for_each_free(count: usize, parallel: bool, body: impl Fn(usize) + Sync) {
    if parallel {
        (0..count).into_par_iter().for_each(body);
    } else {
        for p in 0..count {
            body(p);
        }
    }
}

/// The specialized update a compiled operation dispatches to.
#[derive(Debug, Clone, PartialEq)]
enum Kernel {
    /// No amplitude changes (identity gate, any number of controls).
    Identity,
    /// Dense 2×2 unitary on one target bit (row-major `m`).
    SingleQubit { bit: usize, m: [Complex64; 4] },
    /// `diag(p0, p1)` on one target bit with `p0 ≠ 1` (Rz, global phase).
    Diagonal { bit: usize, phases: [Complex64; 2] },
    /// `diag(1, phase)` on one target bit — only bit-set amplitudes move.
    PhaseShift { bit: usize, phase: Complex64 },
    /// Pauli-X: swap the two amplitudes of each target pair.
    Flip { bit: usize },
    /// SWAP gate: exchange the two target bits.
    SwapBits { bit_a: usize, bit_b: usize },
    /// Diagonal on `k ≥ 2` target bits (produced by the fusion pass of
    /// [`crate::fuse`] and by diagonal `Gate::Unitary` matrices): one table
    /// lookup and multiply per amplitude, whatever the support size.
    DiagonalK {
        /// Target bit positions; bit `t` of the table index ↔ `bits[t]`.
        bits: Vec<usize>,
        /// `2^k` diagonal entries.
        table: Vec<Complex64>,
    },
    /// Dense `2^k × 2^k` unitary on `k` target bits.
    Generic {
        /// Row-major flattened gate matrix (the scalar kernel's layout).
        flat: Vec<Complex64>,
        /// Column-major real plane of the matrix (`col_re[c·dim + r]`), for
        /// the SIMD subspace matvec of [`crate::simd`].
        col_re: Vec<f64>,
        /// Column-major imaginary plane (same layout as `col_re`).
        col_im: Vec<f64>,
        /// `offsets[j]` = OR of the target-bit masks selected by sub-index `j`
        /// (target order gives bit significance, matching `Gate::matrix()`).
        offsets: Vec<usize>,
        /// Subspace dimension `2^k`.
        dim: usize,
    },
}

impl Kernel {
    /// Approximate complex multiplies per free-index iteration, used to
    /// weight the parallel-fan-out decision against
    /// [`PARALLEL_WORK_THRESHOLD`].
    fn unit_cost(&self) -> usize {
        match self {
            Kernel::Identity => 0,
            Kernel::Diagonal { .. }
            | Kernel::DiagonalK { .. }
            | Kernel::PhaseShift { .. }
            | Kernel::Flip { .. }
            | Kernel::SwapBits { .. } => 1,
            Kernel::SingleQubit { .. } => 4,
            Kernel::Generic { dim, .. } => dim * dim,
        }
    }
}

/// An [`Operation`] compiled for a fixed register size: control mask, fixed
/// bit positions and kernel selected once, so application is pure arithmetic.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledOp {
    /// Register width the op was compiled for; [`CompiledOp::apply`] rejects
    /// amplitude buffers smaller than `2^num_qubits` (the kernels write
    /// through raw pointers, so the length invariant is enforced eagerly).
    num_qubits: usize,
    /// OR of the control bits; an index participates iff it contains the mask.
    control_mask: usize,
    /// Bit positions that are *fixed* during enumeration (controls plus the
    /// bits the kernel pins), ascending — the free indices are expanded
    /// around these.
    fixed_bits: Vec<usize>,
    kernel: Kernel,
}

impl CompiledOp {
    /// Compile one operation for an `num_qubits`-wide register.
    pub fn compile(op: &Operation, num_qubits: usize) -> Self {
        assert!(
            op.max_qubit() < num_qubits,
            "operation touches qubit {} outside the register",
            op.max_qubit()
        );
        let control_mask: usize = op.controls.iter().map(|&q| 1usize << q).sum();
        let sorted_with = |extra: &[usize]| -> Vec<usize> {
            let mut bits: Vec<usize> = op.controls.iter().chain(extra).copied().collect();
            bits.sort_unstable();
            bits
        };

        let single =
            |bit: usize, m: [Complex64; 4]| (sorted_with(&[bit]), Kernel::SingleQubit { bit, m });
        let (fixed_bits, kernel) = match &op.gate {
            Gate::I => (Vec::new(), Kernel::Identity),
            Gate::X => {
                let bit = op.targets[0];
                (sorted_with(&[bit]), Kernel::Flip { bit })
            }
            // Exact phase constants, matching `Gate::matrix()` bit-for-bit
            // (from_polar(1.0, PI) would give -1 + 1.2e-16i and make Z·Z
            // deviate from the identity).
            Gate::Z => phase_shift(op, Complex64::new(-1.0, 0.0), &sorted_with),
            Gate::S => phase_shift(op, Complex64::new(0.0, 1.0), &sorted_with),
            Gate::Sdg => phase_shift(op, Complex64::new(0.0, -1.0), &sorted_with),
            Gate::T => phase_shift(
                op,
                Complex64::new(
                    std::f64::consts::FRAC_1_SQRT_2,
                    std::f64::consts::FRAC_1_SQRT_2,
                ),
                &sorted_with,
            ),
            Gate::Tdg => phase_shift(
                op,
                Complex64::new(
                    std::f64::consts::FRAC_1_SQRT_2,
                    -std::f64::consts::FRAC_1_SQRT_2,
                ),
                &sorted_with,
            ),
            Gate::Phase(phi) => phase_shift(op, Complex64::from_polar(1.0, *phi), &sorted_with),
            Gate::Rz(theta) => {
                let bit = op.targets[0];
                let phases = [
                    Complex64::from_polar(1.0, -theta / 2.0),
                    Complex64::from_polar(1.0, theta / 2.0),
                ];
                (sorted_with(&[]), Kernel::Diagonal { bit, phases })
            }
            Gate::GlobalPhase(phi) => {
                let bit = op.targets[0];
                let p = Complex64::from_polar(1.0, *phi);
                (
                    sorted_with(&[]),
                    Kernel::Diagonal {
                        bit,
                        phases: [p, p],
                    },
                )
            }
            Gate::Swap => {
                let (a, b) = (op.targets[0], op.targets[1]);
                (
                    sorted_with(&[a, b]),
                    Kernel::SwapBits { bit_a: a, bit_b: b },
                )
            }
            Gate::H | Gate::Y | Gate::Rx(_) | Gate::Ry(_) => {
                let m = op.gate.matrix();
                single(op.targets[0], [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]])
            }
            // Dense unitaries are classified by *value*: exactly-diagonal
            // matrices (the fusion pass emits these for merged phase chains)
            // go to the one-multiply-per-amplitude diagonal kernels instead
            // of the dense paths.
            Gate::Unitary(m) if op.targets.len() == 1 => {
                let bit = op.targets[0];
                let one = Complex64::new(1.0, 0.0);
                match m.diagonal() {
                    Some(d) if d[0] == one && d[1] == one => (Vec::new(), Kernel::Identity),
                    Some(d) if d[0] == one => {
                        (sorted_with(&[bit]), Kernel::PhaseShift { bit, phase: d[1] })
                    }
                    Some(d) => (
                        sorted_with(&[]),
                        Kernel::Diagonal {
                            bit,
                            phases: [d[0], d[1]],
                        },
                    ),
                    None => single(bit, [m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]]),
                }
            }
            Gate::Unitary(m) => {
                let k = op.targets.len();
                let dim = 1usize << k;
                debug_assert_eq!(m.nrows(), dim);
                match m.diagonal() {
                    Some(d) if d.iter().all(|&x| x == Complex64::new(1.0, 0.0)) => {
                        (Vec::new(), Kernel::Identity)
                    }
                    Some(d) => (
                        sorted_with(&[]),
                        Kernel::DiagonalK {
                            bits: op.targets.clone(),
                            table: d,
                        },
                    ),
                    None => {
                        let flat: Vec<Complex64> = (0..dim)
                            .flat_map(|r| (0..dim).map(move |c| m[(r, c)]))
                            .collect();
                        let col_re: Vec<f64> = (0..dim)
                            .flat_map(|c| (0..dim).map(move |r| m[(r, c)].re))
                            .collect();
                        let col_im: Vec<f64> = (0..dim)
                            .flat_map(|c| (0..dim).map(move |r| m[(r, c)].im))
                            .collect();
                        let offsets: Vec<usize> = (0..dim)
                            .map(|j| {
                                op.targets
                                    .iter()
                                    .enumerate()
                                    .filter(|(t, _)| j & (1 << t) != 0)
                                    .map(|(_, &q)| 1usize << q)
                                    .sum()
                            })
                            .collect();
                        (
                            sorted_with(&op.targets),
                            Kernel::Generic {
                                flat,
                                col_re,
                                col_im,
                                offsets,
                                dim,
                            },
                        )
                    }
                }
            }
        };
        CompiledOp {
            num_qubits,
            control_mask,
            fixed_bits,
            kernel,
        }
    }

    /// Number of free indices this op enumerates on an `amps.len()`-sized
    /// register (the per-application loop count).
    fn free_count(&self, len: usize) -> usize {
        len >> self.fixed_bits.len()
    }

    /// Approximate complex multiplies of one application to an `len`-amplitude
    /// register: the free-index count weighted by the kernel's per-iteration
    /// cost.  This is the same quantity the parallel-fan-out decision uses;
    /// batch engines use it to choose between per-gate and per-register
    /// parallelism.
    pub fn work_estimate(&self, len: usize) -> usize {
        self.free_count(len).saturating_mul(self.kernel.unit_cost())
    }

    /// Apply the compiled operation to `amps` in place.  `scratch` is the
    /// reusable gather buffer for the generic kernel (untouched otherwise).
    ///
    /// `amps` must be a power-of-two length of at least `2^num_qubits` (a
    /// longer buffer is a larger register whose extra qubits the op treats as
    /// free); anything shorter is rejected *before* the raw-pointer kernels
    /// run, in release builds too.
    pub fn apply(&self, amps: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        self.apply_with(amps, scratch, true);
    }

    /// [`CompiledOp::apply`] with the per-gate thread fan-out disabled, for
    /// callers that already parallelise at a coarser grain (one register per
    /// thread, as in [`crate::executor::QuantumExecutor::run_batch`]) and must
    /// not spawn nested worker threads.  Produces bit-identical results to
    /// [`CompiledOp::apply`]: the parallel partitioning never reorders
    /// per-amplitude arithmetic.
    pub fn apply_sequential(&self, amps: &mut [Complex64], scratch: &mut Vec<Complex64>) {
        self.apply_with(amps, scratch, false);
    }

    fn apply_with(
        &self,
        amps: &mut [Complex64],
        scratch: &mut Vec<Complex64>,
        allow_parallel: bool,
    ) {
        assert!(
            amps.len().is_power_of_two() && amps.len() >= (1usize << self.num_qubits),
            "operation compiled for {} qubits applied to {} amplitudes",
            self.num_qubits,
            amps.len()
        );
        let count = self.free_count(amps.len());
        let cm = self.control_mask;
        let fixed = self.fixed_bits.as_slice();
        let parallel = allow_parallel
            && count.saturating_mul(self.kernel.unit_cost()) >= PARALLEL_WORK_THRESHOLD
            && rayon::current_num_threads() > 1;
        // Uncontrolled single-target kernels on the sequential path walk the
        // `2^(bit+1)`-sized blocks with plain slice loops: no per-index bit
        // expansion, contiguous access in both block halves, and the compiler
        // can vectorise.  The expand-based path below covers everything else
        // (controls, and the threaded fan-out).
        let sequential = !parallel;
        let ptr = AmpPtr(amps.as_mut_ptr());
        match &self.kernel {
            Kernel::Identity => {}
            Kernel::SingleQubit { bit, m } => {
                let (bitmask, m) = (1usize << bit, *m);
                if cm == 0 && sequential {
                    if simd::active() {
                        simd::single_qubit(amps, *bit, &m);
                        return;
                    }
                    for block in amps.chunks_exact_mut(2 * bitmask) {
                        let (lo, hi) = block.split_at_mut(bitmask);
                        for (a0, a1) in lo.iter_mut().zip(hi.iter_mut()) {
                            let (x0, x1) = (*a0, *a1);
                            *a0 = m[0] * x0 + m[1] * x1;
                            *a1 = m[2] * x0 + m[3] * x1;
                        }
                    }
                    return;
                }
                // Controlled run path: bits below the lowest fixed bit pass
                // through `expand` untouched, so each step of `run` free
                // indices is a contiguous amplitude run whose pair run lives
                // `bitmask` above — two slice sweeps instead of per-index
                // bit expansion.  Same per-pair arithmetic, bit-identical.
                if sequential && simd::active() && fixed[0] >= 1 {
                    let run = 1usize << fixed[0];
                    let mut p = 0;
                    while p < count {
                        let base = expand(p, fixed) | cm;
                        let (lo, hi) = amps.split_at_mut(base | bitmask);
                        simd::single_qubit_runs(&mut lo[base..base + run], &mut hi[..run], &m);
                        p += run;
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: distinct `p` expand to distinct pairs (i0, i1)
                    // because the target bit is fixed during expansion.
                    unsafe {
                        let i0 = expand(p, fixed) | cm;
                        let i1 = i0 | bitmask;
                        let a0 = ptr.get(i0);
                        let a1 = ptr.get(i1);
                        ptr.set(i0, m[0] * a0 + m[1] * a1);
                        ptr.set(i1, m[2] * a0 + m[3] * a1);
                    }
                });
            }
            Kernel::Diagonal { bit, phases } => {
                let (bit, phases) = (*bit, *phases);
                if cm == 0 && sequential {
                    // Like `PhaseShift`, the uncontrolled diagonal sweep is
                    // two contiguous scale loops LLVM already vectorizes at
                    // full width — the explicit `simd::diagonal` body
                    // measured no faster, so the scalar loop stays.
                    let stride = 1usize << bit;
                    for block in amps.chunks_exact_mut(2 * stride) {
                        let (lo, hi) = block.split_at_mut(stride);
                        for a in lo {
                            *a *= phases[0];
                        }
                        for a in hi {
                            *a *= phases[1];
                        }
                    }
                    return;
                }
                // Controlled run path (see `SingleQubit`): the target bit is
                // free, so within a contiguous run the phase either follows
                // the uncontrolled diagonal pattern (`bit` below the run
                // width) or is constant (`bit` above it).
                if sequential && simd::active() && !fixed.is_empty() && fixed[0] >= 1 {
                    let run = 1usize << fixed[0];
                    let mut p = 0;
                    while p < count {
                        let start = expand(p, fixed) | cm;
                        let chunk = &mut amps[start..start + run];
                        if bit < fixed[0] {
                            simd::diagonal(chunk, bit, &phases);
                        } else {
                            simd::scale_run(chunk, phases[(start >> bit) & 1]);
                        }
                        p += run;
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: the target bit is free here, so each `p` maps to
                    // exactly one amplitude index.
                    unsafe {
                        let i = expand(p, fixed) | cm;
                        ptr.set(i, ptr.get(i) * phases[(i >> bit) & 1]);
                    }
                });
            }
            Kernel::PhaseShift { bit, phase } => {
                let (bitmask, phase) = (1usize << bit, *phase);
                if cm == 0 && sequential {
                    // No explicit SIMD body here: this contiguous
                    // multiply-the-hi-half loop is exactly the shape LLVM
                    // auto-vectorizes, and the measured `simd::phase_shift`
                    // variant was *slower* (see `simd.rs` module docs) — the
                    // dispatcher keeps whichever body wins.
                    for block in amps.chunks_exact_mut(2 * bitmask) {
                        for a in &mut block[bitmask..] {
                            *a *= phase;
                        }
                    }
                    return;
                }
                // Controlled run path (see `SingleQubit`).  No bit-0 caveat
                // here: every amplitude of a run is multiplied (no identity
                // lanes), the same arithmetic as the scalar expand loop.
                if sequential && simd::active() && fixed[0] >= 1 {
                    let run = 1usize << fixed[0];
                    let mut p = 0;
                    while p < count {
                        let start = expand(p, fixed) | cm | bitmask;
                        simd::scale_run(&mut amps[start..start + run], phase);
                        p += run;
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: one amplitude per `p` (target bit fixed to 1).
                    unsafe {
                        let i = expand(p, fixed) | cm | bitmask;
                        ptr.set(i, ptr.get(i) * phase);
                    }
                });
            }
            Kernel::Flip { bit } => {
                let bitmask = 1usize << bit;
                if cm == 0 && sequential {
                    for block in amps.chunks_exact_mut(2 * bitmask) {
                        let (lo, hi) = block.split_at_mut(bitmask);
                        lo.swap_with_slice(hi);
                    }
                    return;
                }
                // Controlled run path (see `SingleQubit`): swap whole
                // contiguous runs at memcpy speed — a pure permutation, so
                // gating it on the SIMD toggle only changes speed, and the
                // scalar expand loop below stays the oracle.
                if sequential && simd::active() && fixed[0] >= 1 {
                    let run = 1usize << fixed[0];
                    let mut p = 0;
                    while p < count {
                        let base = expand(p, fixed) | cm;
                        let (lo, hi) = amps.split_at_mut(base | bitmask);
                        lo[base..base + run].swap_with_slice(&mut hi[..run]);
                        p += run;
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: disjoint pairs, as in `SingleQubit`.
                    unsafe {
                        let i0 = expand(p, fixed) | cm;
                        let i1 = i0 | bitmask;
                        let a0 = ptr.get(i0);
                        ptr.set(i0, ptr.get(i1));
                        ptr.set(i1, a0);
                    }
                });
            }
            Kernel::DiagonalK { bits, table } => {
                let (bits, table) = (bits.as_slice(), table.as_slice());
                let gather = |i: usize| -> usize {
                    bits.iter()
                        .enumerate()
                        .fold(0usize, |acc, (t, &b)| acc | (((i >> b) & 1) << t))
                };
                if cm == 0 && sequential {
                    if simd::active() {
                        simd::diagonal_k(amps, bits, table);
                        return;
                    }
                    for (i, a) in amps.iter_mut().enumerate() {
                        *a *= table[gather(i)];
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: every target bit is free, so each `p` maps to
                    // exactly one amplitude index.
                    unsafe {
                        let i = expand(p, fixed) | cm;
                        ptr.set(i, ptr.get(i) * table[gather(i)]);
                    }
                });
            }
            Kernel::SwapBits { bit_a, bit_b } => {
                let (ma, mb) = (1usize << bit_a, 1usize << bit_b);
                // Run path (see `Flip`): both target bits are fixed, so the
                // swapped pair of each step is a pair of disjoint contiguous
                // runs — exchanged at memcpy speed.  A pure permutation, so
                // gating it on the SIMD toggle only changes speed and the
                // expand loop below stays the oracle.
                if sequential && simd::active() && fixed[0] >= 1 {
                    let run = 1usize << fixed[0];
                    let mut p = 0;
                    while p < count {
                        let base = expand(p, fixed) | cm;
                        let (ia, ib) = (base | ma, base | mb);
                        let (lo_i, hi_i) = (ia.min(ib), ia.max(ib));
                        let (lo, hi) = amps.split_at_mut(hi_i);
                        lo[lo_i..lo_i + run].swap_with_slice(&mut hi[..run]);
                        p += run;
                    }
                    return;
                }
                for_each_free(count, parallel, |p| {
                    // SAFETY: both target bits are fixed during expansion, so
                    // each `p` owns the disjoint pair (base|a, base|b).
                    unsafe {
                        let base = expand(p, fixed) | cm;
                        let (ia, ib) = (base | ma, base | mb);
                        let a = ptr.get(ia);
                        ptr.set(ia, ptr.get(ib));
                        ptr.set(ib, a);
                    }
                });
            }
            Kernel::Generic {
                flat,
                col_re,
                col_im,
                offsets,
                dim,
            } => {
                let dim = *dim;
                // The SIMD subspace matvec works for controlled ops too (the
                // gather/scatter around it is index arithmetic either way),
                // so it is gated only on the thread-local toggle.
                let use_simd = simd::active();
                let block = |scratch: &mut Vec<Complex64>, out: &mut Vec<Complex64>, p: usize| {
                    scratch.resize(dim, ZERO);
                    // SAFETY: all indices of one block share the same `base`
                    // and differ only in the fixed target bits, so blocks of
                    // distinct `p` are disjoint.
                    unsafe {
                        let base = expand(p, fixed) | cm;
                        for (s, &off) in scratch.iter_mut().zip(offsets) {
                            *s = ptr.get(base | off);
                        }
                        if use_simd {
                            out.resize(dim, ZERO);
                            simd::generic_matvec(col_re, col_im, dim, scratch, out);
                            for (o, &off) in out.iter().zip(offsets) {
                                ptr.set(base | off, *o);
                            }
                        } else {
                            for (r, &off) in offsets.iter().enumerate() {
                                let row = &flat[r * dim..(r + 1) * dim];
                                let mut acc = ZERO;
                                for (mrc, s) in row.iter().zip(scratch.iter()) {
                                    acc += mrc * s;
                                }
                                ptr.set(base | off, acc);
                            }
                        }
                    }
                };
                if parallel {
                    (0..count).into_par_iter().for_each_init(
                        || (vec![ZERO; dim], vec![ZERO; dim]),
                        |(s, o), p| block(s, o, p),
                    );
                } else {
                    let mut out_buf = Vec::new();
                    for p in 0..count {
                        block(scratch, &mut out_buf, p);
                    }
                }
            }
        }
    }
}

/// [`CompiledOp::work_estimate`] derived from the gate classification alone
/// (no matrix flattening or offset tables), for cheap stats pricing of raw
/// circuits in [`CompiledCircuit::optimized_with`].  Mirrors the kernel
/// dispatch of [`CompiledOp::compile`] case for case.
fn op_sweep_work(op: &Operation, len: usize) -> usize {
    let c = op.controls.len();
    let one = Complex64::new(1.0, 0.0);
    match &op.gate {
        Gate::I => 0,
        Gate::X | Gate::Z | Gate::S | Gate::Sdg | Gate::T | Gate::Tdg | Gate::Phase(_) => {
            len >> (c + 1)
        }
        Gate::Rz(_) | Gate::GlobalPhase(_) => len >> c,
        Gate::Swap => len >> (c + 2),
        Gate::H | Gate::Y | Gate::Rx(_) | Gate::Ry(_) => (len >> (c + 1)).saturating_mul(4),
        Gate::Unitary(m) => {
            let k = op.targets.len();
            match m.diagonal() {
                Some(d) if d.iter().all(|&x| x == one) => 0,
                Some(d) if k == 1 && d[0] == one => len >> (c + 1),
                Some(_) => len >> c,
                None if k == 1 => (len >> (c + 1)).saturating_mul(4),
                None => ((len >> c) >> k).saturating_mul(1usize << (2 * k)),
            }
        }
    }
}

fn phase_shift(
    op: &Operation,
    phase: Complex64,
    sorted_with: &impl Fn(&[usize]) -> Vec<usize>,
) -> (Vec<usize>, Kernel) {
    let bit = op.targets[0];
    (sorted_with(&[bit]), Kernel::PhaseShift { bit, phase })
}

/// A circuit compiled once for repeated application.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledCircuit {
    num_qubits: usize,
    ops: Vec<CompiledOp>,
}

impl CompiledCircuit {
    /// Compile every operation of `circuit` for its own register width.
    pub fn compile(circuit: &Circuit) -> Self {
        Self::compile_for(circuit, circuit.num_qubits())
    }

    /// Run the optimizer pass of [`crate::fuse`] (gate fusion + diagonal
    /// merging) with the measured cost model
    /// ([`FusionOptions::measured`](crate::fuse::FusionOptions::measured):
    /// per-kernel-class sweep costs calibrated on this machine at first use
    /// per register size) and compile the rewritten circuit — one
    /// compilation, observable through [`circuit_compile_count`] exactly
    /// like [`CompiledCircuit::compile`].
    ///
    /// The optimized form implements the same unitary to ≲ 1e-13 (fused ops
    /// are floating-point matrix products); [`CompiledCircuit::compile`] on
    /// the raw circuit remains the unoptimized equivalence oracle.
    pub fn optimized(circuit: &Circuit) -> Self {
        Self::optimized_with(
            circuit,
            circuit.num_qubits(),
            &crate::fuse::FusionOptions::measured(),
        )
        .0
    }

    /// [`CompiledCircuit::optimized`] with an explicit register width and
    /// fusion options, also returning the before/after
    /// [`CircuitStats`](crate::fuse::CircuitStats) report.
    pub fn optimized_with(
        circuit: &Circuit,
        num_qubits: usize,
        options: &crate::fuse::FusionOptions,
    ) -> (Self, crate::fuse::CircuitStats) {
        let (compiled, _, stats) = Self::optimized_with_fused(circuit, num_qubits, options);
        (compiled, stats)
    }

    /// [`CompiledCircuit::optimized_with`] that also hands back the rewritten
    /// [`Circuit`] itself, so callers building a second execution plan from
    /// the same fused op list (the sharded executor compiles both a flat
    /// oracle and a [`crate::shard::ShardedCircuit`]) do not re-run the
    /// optimizer.  Still one [`circuit_compile_count`] tick.
    pub fn optimized_with_fused(
        circuit: &Circuit,
        num_qubits: usize,
        options: &crate::fuse::FusionOptions,
    ) -> (Self, Circuit, crate::fuse::CircuitStats) {
        let fused = crate::fuse::optimize_circuit_for(circuit, num_qubits, options);
        let compiled = Self::compile_for(&fused, num_qubits);
        let len = 1usize << num_qubits;
        // Shape-based pricing of the raw circuit for the stats report: the
        // same quantity `CompiledOp::work_estimate` would give, derived from
        // the gate classification alone so construction does not pay a full
        // second compile (no matrix flattening or offset tables).
        let raw_sweep_work = circuit
            .operations()
            .iter()
            .map(|op| op_sweep_work(op, len))
            .fold(0usize, |a, w| a.saturating_add(w));
        let stats = crate::fuse::CircuitStats {
            raw_ops: circuit.len(),
            fused_ops: compiled.len(),
            raw_sweep_work,
            fused_sweep_work: compiled.work_estimate(len),
        };
        (compiled, fused, stats)
    }

    /// Compile for a register of `num_qubits` (≥ the circuit's width), so the
    /// compiled form can run on a larger register directly.
    pub fn compile_for(circuit: &Circuit, num_qubits: usize) -> Self {
        assert!(
            circuit.num_qubits() <= num_qubits,
            "circuit needs {} qubits, register has {}",
            circuit.num_qubits(),
            num_qubits
        );
        CIRCUIT_COMPILES.with(|c| c.set(c.get() + 1));
        CompiledCircuit {
            num_qubits,
            ops: circuit
                .operations()
                .iter()
                .map(|op| CompiledOp::compile(op, num_qubits))
                .collect(),
        }
    }

    /// Register width this circuit was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of compiled operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when there are no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Approximate complex multiplies of one full application to an
    /// `len`-amplitude register (sum of every operation's
    /// [`CompiledOp::work_estimate`]).
    pub fn work_estimate(&self, len: usize) -> usize {
        self.ops
            .iter()
            .map(|op| op.work_estimate(len))
            .fold(0usize, |a, w| a.saturating_add(w))
    }

    /// Apply all compiled operations to `state` in order, in place.
    pub fn apply(&self, state: &mut StateVector) {
        self.apply_with(state, true);
    }

    /// [`CompiledCircuit::apply`] with the per-gate thread fan-out disabled
    /// (see [`CompiledOp::apply_sequential`]); bit-identical results.
    pub fn apply_sequential(&self, state: &mut StateVector) {
        self.apply_with(state, false);
    }

    fn apply_with(&self, state: &mut StateVector, allow_parallel: bool) {
        assert!(
            self.num_qubits <= state.num_qubits(),
            "compiled circuit needs {} qubits, register has {}",
            self.num_qubits,
            state.num_qubits()
        );
        let (amps, scratch) = state.amps_and_scratch();
        for op in &self.ops {
            op.apply_with(amps, scratch, allow_parallel);
        }
    }
}

pub mod reference {
    //! The seed's generic gate-application path, retained verbatim (modulo
    //! being made sequential-only) as the correctness oracle for the kernel
    //! property tests and as the baseline `bench_json` measures the
    //! specialized kernels against.  It re-materializes `Gate::matrix()` on
    //! every application, visits all `2^n` output amplitudes per gate and
    //! allocates a fresh output vector — exactly the costs the compiled
    //! kernels remove.

    use crate::circuit::{Circuit, Operation};
    use crate::state::StateVector;
    use num_complex::Complex64;

    /// Apply one operation by rebuilding the full amplitude vector.
    pub fn apply_op(state: &mut StateVector, op: &Operation) {
        assert!(
            op.max_qubit() < state.num_qubits(),
            "operation touches qubit {} outside the register",
            op.max_qubit()
        );
        let matrix = op.gate.matrix();
        let k = op.targets.len();
        let dim = 1usize << k;
        debug_assert_eq!(matrix.nrows(), dim);

        let control_mask: usize = op.controls.iter().map(|&q| 1usize << q).sum();
        let target_bits: Vec<usize> = op.targets.iter().map(|&q| 1usize << q).collect();

        // Flatten the gate matrix for cheap indexed access.
        let flat: Vec<Complex64> = (0..dim)
            .flat_map(|r| (0..dim).map(move |cidx| (r, cidx)))
            .map(|(r, cidx)| matrix[(r, cidx)])
            .collect();

        let old = state.amplitudes();
        let compute = |i: usize| -> Complex64 {
            // Controls not satisfied: amplitude unchanged.
            if i & control_mask != control_mask {
                return old[i];
            }
            // Row index within the gate's subspace = the target bits of i.
            let mut row = 0usize;
            for (t, &bit) in target_bits.iter().enumerate() {
                if i & bit != 0 {
                    row |= 1 << t;
                }
            }
            // Base index with all target bits cleared.
            let mut base = i;
            for &bit in &target_bits {
                base &= !bit;
            }
            let mut acc = Complex64::new(0.0, 0.0);
            for col in 0..dim {
                let m = flat[row * dim + col];
                if m == Complex64::new(0.0, 0.0) {
                    continue;
                }
                // Source index: base with target bits set according to col.
                let mut src = base;
                for (t, &bit) in target_bits.iter().enumerate() {
                    if col & (1 << t) != 0 {
                        src |= bit;
                    }
                }
                acc += m * old[src];
            }
            acc
        };

        let new_amps: Vec<Complex64> = (0..old.len()).map(compute).collect();
        state.set_amplitudes(new_amps);
    }

    /// Apply a whole circuit through the generic per-gate path.
    pub fn apply_circuit(state: &mut StateVector, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= state.num_qubits(),
            "circuit needs {} qubits, register has {}",
            circuit.num_qubits(),
            state.num_qubits()
        );
        for op in circuit.operations() {
            apply_op(state, op);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cmatrix::CMatrix;

    fn apply_both(circ: &Circuit) -> (StateVector, StateVector) {
        let mut fast = StateVector::zero_state(circ.num_qubits());
        fast.apply_circuit(circ);
        let mut slow = StateVector::zero_state(circ.num_qubits());
        reference::apply_circuit(&mut slow, circ);
        (fast, slow)
    }

    fn assert_states_close(a: &StateVector, b: &StateVector) {
        let diff: f64 = a
            .amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f64::max);
        assert!(diff < 1e-12, "kernel vs reference max diff {diff}");
    }

    #[test]
    fn expand_inserts_zero_bits() {
        // fixed bits {1, 3}: free index bits map to positions 0, 2, 4, 5, ...
        assert_eq!(expand(0b000, &[1, 3]), 0b00000);
        assert_eq!(expand(0b001, &[1, 3]), 0b00001);
        assert_eq!(expand(0b010, &[1, 3]), 0b00100);
        assert_eq!(expand(0b011, &[1, 3]), 0b00101);
        assert_eq!(expand(0b100, &[1, 3]), 0b10000);
        assert_eq!(expand(0b111, &[1, 3]), 0b10101);
    }

    #[test]
    fn every_named_gate_matches_reference() {
        let gates: Vec<(Gate, Vec<usize>)> = vec![
            (Gate::I, vec![1]),
            (Gate::X, vec![0]),
            (Gate::Y, vec![2]),
            (Gate::Z, vec![1]),
            (Gate::H, vec![0]),
            (Gate::S, vec![2]),
            (Gate::Sdg, vec![0]),
            (Gate::T, vec![1]),
            (Gate::Tdg, vec![2]),
            (Gate::Rx(0.37), vec![0]),
            (Gate::Ry(-1.2), vec![1]),
            (Gate::Rz(2.6), vec![2]),
            (Gate::Phase(0.9), vec![0]),
            (Gate::GlobalPhase(1.4), vec![1]),
            (Gate::Swap, vec![0, 2]),
        ];
        for (gate, targets) in gates {
            let mut circ = Circuit::new(3);
            // A little entanglement first so amplitudes are non-trivial.
            circ.h(0).cx(0, 1).ry(2, 0.4);
            circ.gate(gate.clone(), &targets);
            let (fast, slow) = apply_both(&circ);
            assert_states_close(&fast, &slow);
        }
    }

    #[test]
    fn controlled_gates_match_reference() {
        let cases: Vec<(Gate, Vec<usize>, Vec<usize>)> = vec![
            (Gate::X, vec![0], vec![2]),
            (Gate::X, vec![1], vec![0, 3]),
            (Gate::Z, vec![3], vec![1]),
            (Gate::Ry(0.7), vec![2], vec![0]),
            (Gate::Rz(-0.9), vec![0], vec![1, 2]),
            (Gate::Phase(1.1), vec![1], vec![3]),
            (Gate::Swap, vec![0, 3], vec![1]),
            (Gate::GlobalPhase(0.5), vec![2], vec![0]),
            (Gate::I, vec![1], vec![2]),
        ];
        for (gate, targets, controls) in cases {
            let mut circ = Circuit::new(4);
            circ.h(0).h(1).h(2).h(3).cx(0, 2).t(3);
            circ.controlled_gate(gate, &targets, &controls);
            let (fast, slow) = apply_both(&circ);
            assert_states_close(&fast, &slow);
        }
    }

    #[test]
    fn dense_multi_qubit_unitary_matches_reference() {
        // 2-qubit unitary: X⊗X composed with a phase, on non-adjacent targets.
        let x = Gate::X.matrix();
        let xx = x.kron(&x);
        let u = Gate::Unitary(CMatrix::from_fn(4, 4, |i, j| {
            xx[(i, j)] * Complex64::from_polar(1.0, 0.3)
        }));
        let mut circ = Circuit::new(4);
        circ.h(0).cx(0, 1).ry(3, 0.8);
        circ.gate(u.clone(), &[1, 3]);
        circ.controlled_gate(u, &[2, 0], &[1]);
        let (fast, slow) = apply_both(&circ);
        assert_states_close(&fast, &slow);
    }

    #[test]
    fn compiled_circuit_reuse_matches_fresh_application() {
        let mut circ = Circuit::new(3);
        circ.h(0).cry(0, 1, 0.9).ccx(0, 1, 2).rz(2, -0.4).swap(0, 2);
        let compiled = CompiledCircuit::compile(&circ);
        assert_eq!(compiled.len(), circ.len());
        for col in 0..8 {
            let mut via_compiled = StateVector::basis_state(3, col);
            compiled.apply(&mut via_compiled);
            let mut via_state = StateVector::basis_state(3, col);
            via_state.apply_circuit(&circ);
            assert_states_close(&via_compiled, &via_state);
        }
    }

    #[test]
    fn compile_for_larger_register() {
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1);
        let compiled = CompiledCircuit::compile_for(&circ, 4);
        let mut sv = StateVector::zero_state(4);
        compiled.apply(&mut sv);
        assert!((sv.probability(0) - 0.5).abs() < 1e-14);
        assert!((sv.probability(3) - 0.5).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "compiled for 16 qubits")]
    fn apply_rejects_short_amplitude_buffers() {
        // The kernels write through raw pointers, so a buffer shorter than the
        // compiled register must be rejected before any pointer arithmetic.
        let op = CompiledOp::compile(&Operation::new(Gate::X, vec![0], vec![15]), 16);
        let mut amps = vec![ZERO; 4];
        let mut scratch = Vec::new();
        op.apply(&mut amps, &mut scratch);
    }

    #[test]
    fn clifford_phase_gates_are_exact() {
        // Z, S and their adjoints use the exact matrix constants (not
        // from_polar), so Z·Z and S·S† restore amplitudes bit-for-bit.
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1).ry(1, 0.3);
        let start = StateVector::run(&circ);

        let mut zz = start.clone();
        let mut pair = Circuit::new(2);
        pair.z(0).z(0).s(1);
        pair.gate(Gate::Sdg, &[1]);
        zz.apply_circuit(&pair);
        assert_eq!(zz.amplitudes(), start.amplitudes());
    }

    #[test]
    fn kernel_classification() {
        let n = 4;
        let compile = |gate: Gate, targets: &[usize]| {
            CompiledOp::compile(&Operation::new(gate, targets.to_vec(), vec![]), n)
        };
        assert_eq!(compile(Gate::I, &[0]).kernel, Kernel::Identity);
        assert!(matches!(
            compile(Gate::X, &[1]).kernel,
            Kernel::Flip { bit: 1 }
        ));
        assert!(matches!(
            compile(Gate::Z, &[2]).kernel,
            Kernel::PhaseShift { bit: 2, .. }
        ));
        assert!(matches!(
            compile(Gate::Rz(0.1), &[0]).kernel,
            Kernel::Diagonal { bit: 0, .. }
        ));
        assert!(matches!(
            compile(Gate::H, &[3]).kernel,
            Kernel::SingleQubit { bit: 3, .. }
        ));
        assert!(matches!(
            compile(Gate::Swap, &[1, 3]).kernel,
            Kernel::SwapBits { bit_a: 1, bit_b: 3 }
        ));
        let h = Gate::H.matrix();
        assert!(matches!(
            compile(Gate::Unitary(h.kron(&h)), &[0, 2]).kernel,
            Kernel::Generic { dim: 4, .. }
        ));
        // 1-qubit dense unitaries use the pair kernel, not the generic one.
        assert!(matches!(
            compile(Gate::Unitary(Gate::H.matrix()), &[1]).kernel,
            Kernel::SingleQubit { bit: 1, .. }
        ));
        // Unitary matrices that are exactly diagonal route to the diagonal
        // kernels — identity, phase-shift, Rz-like, and the k-qubit table.
        assert_eq!(
            compile(Gate::Unitary(CMatrix::identity(4)), &[0, 2]).kernel,
            Kernel::Identity
        );
        assert_eq!(
            compile(Gate::Unitary(CMatrix::identity(2)), &[1]).kernel,
            Kernel::Identity
        );
        assert!(matches!(
            compile(Gate::Unitary(Gate::Phase(0.3).matrix()), &[1]).kernel,
            Kernel::PhaseShift { bit: 1, .. }
        ));
        assert!(matches!(
            compile(Gate::Unitary(Gate::Rz(0.3).matrix()), &[2]).kernel,
            Kernel::Diagonal { bit: 2, .. }
        ));
        let cz_like = CMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                Complex64::from_polar(1.0, 0.1 * i as f64)
            } else {
                Complex64::new(0.0, 0.0)
            }
        });
        assert!(matches!(
            compile(Gate::Unitary(cz_like), &[1, 3]).kernel,
            Kernel::DiagonalK { .. }
        ));
    }

    #[test]
    fn op_sweep_work_matches_compiled_work_estimate() {
        // The shape-based pricing used by `optimized_with` must agree with
        // the real compiled op, case for case, controls included.
        let n = 6;
        let len = 1usize << n;
        let diag = CMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                Complex64::from_polar(1.0, 0.2 * i as f64)
            } else {
                Complex64::new(0.0, 0.0)
            }
        });
        let h = Gate::H.matrix();
        let cases: Vec<Operation> = vec![
            Operation::new(Gate::I, vec![0], vec![]),
            Operation::new(Gate::X, vec![1], vec![3]),
            Operation::new(Gate::T, vec![2], vec![]),
            Operation::new(Gate::Rz(0.4), vec![0], vec![4, 5]),
            Operation::new(Gate::GlobalPhase(0.3), vec![1], vec![]),
            Operation::new(Gate::Swap, vec![0, 3], vec![1]),
            Operation::new(Gate::H, vec![2], vec![0]),
            Operation::new(Gate::Unitary(Gate::Phase(0.7).matrix()), vec![3], vec![]),
            Operation::new(Gate::Unitary(Gate::Rz(0.7).matrix()), vec![3], vec![1]),
            Operation::new(Gate::Unitary(CMatrix::identity(4)), vec![0, 1], vec![]),
            Operation::new(Gate::Unitary(diag), vec![2, 4], vec![0]),
            Operation::new(Gate::Unitary(h.kron(&h)), vec![1, 5], vec![2]),
            Operation::new(Gate::Unitary(h.clone()), vec![4], vec![]),
        ];
        for op in &cases {
            assert_eq!(
                op_sweep_work(op, len),
                CompiledOp::compile(op, n).work_estimate(len),
                "pricing mismatch for {:?} on {:?}/{:?}",
                op.gate.name(),
                op.targets,
                op.controls
            );
        }
    }

    #[test]
    fn diagonal_k_kernel_matches_reference() {
        // A controlled 2-qubit diagonal through the DiagonalK kernel vs the
        // generic reference path.
        let table: Vec<Complex64> = (0..4)
            .map(|i| Complex64::from_polar(1.0, 0.4 * i as f64 - 0.7))
            .collect();
        let diag = CMatrix::from_fn(4, 4, |i, j| {
            if i == j {
                table[i]
            } else {
                Complex64::new(0.0, 0.0)
            }
        });
        let mut circ = Circuit::new(4);
        circ.h(0).h(1).h(2).h(3).cx(0, 2);
        circ.gate(Gate::Unitary(diag.clone()), &[2, 0]);
        circ.controlled_gate(Gate::Unitary(diag), &[3, 1], &[0]);
        let (fast, slow) = apply_both(&circ);
        assert_states_close(&fast, &slow);
    }

    #[test]
    fn optimized_compiles_once_and_matches_compile() {
        let mut circ = Circuit::new(3);
        circ.h(0).rz(0, 0.4).t(0).cx(0, 1).x(2).phase(2, 1.1).x(2);
        let before = circuit_compile_count();
        let (optimized, stats) =
            CompiledCircuit::optimized_with(&circ, 3, &crate::fuse::FusionOptions::default());
        assert_eq!(
            circuit_compile_count(),
            before + 1,
            "optimization + compilation counts as one circuit compile"
        );
        assert_eq!(stats.raw_ops, circ.len());
        assert_eq!(stats.fused_ops, optimized.len());
        assert!(stats.fused_ops < stats.raw_ops);
        // Mask-densifying fusion may trade sweep work for fewer dispatches
        // on tiny registers; the optimizer's acceptance gate bounds the
        // trade by the per-op overhead it saves.
        assert!(
            stats.fused_sweep_work
                <= stats.raw_sweep_work + (stats.raw_ops - stats.fused_ops) * 512
        );
        for col in 0..8 {
            let mut a = StateVector::basis_state(3, col);
            optimized.apply(&mut a);
            let mut b = StateVector::basis_state(3, col);
            b.apply_circuit(&circ);
            assert_states_close(&a, &b);
        }
    }
}
