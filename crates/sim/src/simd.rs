//! SIMD (`f64x4`) statevector kernels — vectorized bodies for the hot
//! uncontrolled sweeps of [`crate::kernels`], plus the generic-kernel
//! subspace matvec (which vectorizes for controlled ops too).
//!
//! # Lane layout and bit-identity
//!
//! Amplitudes are interleaved `[re, im, re, im, ...]` in memory
//! (`Complex64` is `repr(C)`), so one `f64x4` holds **two complex
//! amplitudes**.  A complex multiply `z·w` becomes two lane-wise products
//! and one add on the interleaved vector and its pair-swapped shuffle:
//!
//! ```text
//! out = splat(w.re)·z + [-w.im, w.im, -w.im, w.im]·swap_adjacent(z)
//! ```
//!
//! which computes `re' = w.re·re + (−w.im)·im` and
//! `im' = w.re·im + w.im·re` — exactly the products and sums of the scalar
//! `Complex64` multiply (`a − b ≡ a + (−b)`, and IEEE multiplication and
//! addition are commutative), so every kernel here is **bit-identical** to
//! its scalar twin in `kernels.rs`.  No fused multiply-adds are used: the
//! scalar complex arithmetic has none, and introducing them would change
//! the roundings.  The generic kernel instead splits the gate matrix into
//! column-major re/im planes and assigns four *output* rows per lane pair
//! (`dim = 2^k ≥ 4` is always lane-divisible), accumulating each output in
//! the scalar kernel's ascending-column order.
//!
//! # Remainder convention
//!
//! Target bit `b ≥ 1` gives contiguous half-blocks of `2^(b+1) ≥ 4`
//! doubles, so the sweeps chunk exactly by 4 with no remainder.  For
//! `b = 0` the pair members are adjacent in memory; the single-qubit and
//! diagonal kernels handle that with pair-broadcast shuffles.  Not every
//! sweep gets a manual body: the *uncontrolled* diagonal and phase-shift
//! kernels are contiguous scale loops LLVM already auto-vectorizes at full
//! width, and the explicit `f64x4` versions measured no faster (phase-shift
//! measurably slower), so `kernels.rs` keeps their scalar loops and this
//! module's [`diagonal`] is used only inside controlled runs, where the
//! strided access pattern defeats the auto-vectorizer.
//!
//! # Dispatch
//!
//! Like `qls-linalg`, every kernel is compiled at the x86-64 baseline and
//! again under `#[target_feature(enable = "avx2,fma")]`, selected at
//! runtime through the cached [`wide::runtime::avx2_fma_available`] check;
//! both clones execute the identical operation sequence.  The thread-local
//! [`with_scalar_kernels`] switch forces the verbatim scalar loops instead
//! — the equivalence oracle and the baseline for the
//! `simd_vs_scalar_speedup` benchmark fields.
//!
//! Nothing here is register-size-aware: the sweeps see only a buffer and a
//! stride, so the sharded engine ([`crate::shard`]) reuses these exact
//! bodies unchanged on each `2^m`-amplitude chunk — a chunk is just a
//! smaller register, and the bit-identity argument above carries over
//! per shard.

use num_complex::Complex64;
use std::cell::Cell;
use wide::f64x4;

thread_local! {
    /// Whether the SIMD kernel bodies are used on this thread (default yes).
    static SIMD_ENABLED: Cell<bool> = const { Cell::new(true) };
}

/// True when the SIMD kernel bodies are active on the calling thread.
pub fn simd_kernels_enabled() -> bool {
    SIMD_ENABLED.with(|c| c.get())
}

/// Run `f` with the SIMD kernel bodies disabled on this thread, restoring
/// the previous setting afterwards (panic-safe).  The scalar loops compute
/// bit-identical amplitudes, so this only changes *how fast* `f` runs —
/// it exists for the equivalence tests and the `simd_vs_scalar` benchmarks.
pub fn with_scalar_kernels<R>(f: impl FnOnce() -> R) -> R {
    SIMD_ENABLED.with(|c| {
        struct Restore<'a>(&'a Cell<bool>, bool);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.set(self.1);
            }
        }
        let _restore = Restore(c, c.replace(false));
        f()
    })
}

/// View the amplitude buffer as interleaved `[re, im, ...]` doubles.
#[inline(always)]
fn as_f64_mut(amps: &mut [Complex64]) -> &mut [f64] {
    // SAFETY: Complex64 is repr(C) { re: f64, im: f64 } — two f64s with
    // f64 alignment — so the reinterpretation is exact.
    unsafe { core::slice::from_raw_parts_mut(amps.as_mut_ptr().cast::<f64>(), amps.len() * 2) }
}

/// `[−w.im, w.im, −w.im, w.im]` — the pair-signed imaginary coefficient of
/// the interleaved complex multiply (see module docs).
#[inline(always)]
fn im_coeff(w: Complex64) -> f64x4 {
    f64x4::new([-w.im, w.im, -w.im, w.im])
}

/// Generate the baseline + `avx2,fma` clones of a kernel body and a
/// dispatcher (same pattern as `qls-linalg`; identical operation sequence
/// in both clones).
macro_rules! multiversioned {
    ($(#[$meta:meta])* $name:ident => $body:ident ( $($arg:ident : $ty:ty),* $(,)? )) => {
        $(#[$meta])*
        pub(crate) fn $name($($arg: $ty),*) {
            #[cfg(target_arch = "x86_64")]
            {
                #[target_feature(enable = "avx2,fma")]
                unsafe fn accelerated($($arg: $ty),*) {
                    $body($($arg),*)
                }
                if ::wide::runtime::avx2_fma_available() {
                    // SAFETY: avx2+fma presence verified on this CPU.
                    return unsafe { accelerated($($arg),*) };
                }
            }
            $body($($arg),*)
        }
    };
}

// ---------------------------------------------------------------------------
// Single-qubit pair sweep: a0' = m0·a0 + m1·a1, a1' = m2·a0 + m3·a1 over
// every pair split by the target bit.
// ---------------------------------------------------------------------------

#[inline(always)]
fn single_qubit_body(amps: &mut [Complex64], bit: usize, m: &[Complex64; 4]) {
    let fs = as_f64_mut(amps);
    if bit == 0 {
        // Pair members are adjacent: one vector holds [a0, a1]; broadcast
        // each member across both pairs and apply the per-pair rows of m.
        let ca = f64x4::new([m[0].re, m[0].re, m[2].re, m[2].re]);
        let da = f64x4::new([-m[0].im, m[0].im, -m[2].im, m[2].im]);
        let cb = f64x4::new([m[1].re, m[1].re, m[3].re, m[3].re]);
        let db = f64x4::new([-m[1].im, m[1].im, -m[3].im, m[3].im]);
        for chunk in fs.chunks_exact_mut(4) {
            let x = f64x4::from_slice(chunk);
            let x0 = x.dup_low_pair();
            let x1 = x.dup_high_pair();
            let out = (ca * x0 + da * x0.swap_adjacent()) + (cb * x1 + db * x1.swap_adjacent());
            out.write_to_slice(chunk);
        }
        return;
    }
    let (c0, d0) = (f64x4::splat(m[0].re), im_coeff(m[0]));
    let (c1, d1) = (f64x4::splat(m[1].re), im_coeff(m[1]));
    let (c2, d2) = (f64x4::splat(m[2].re), im_coeff(m[2]));
    let (c3, d3) = (f64x4::splat(m[3].re), im_coeff(m[3]));
    let half = 2usize << bit; // doubles per half-block, ≥ 4
    if half >= 8 {
        // Unrolled: several independent vector groups per iteration.  Each
        // output element's operations are unchanged, the wider body only
        // gives the out-of-order core more dependency chains to overlap.
        for block in fs.chunks_exact_mut(2 * half) {
            let (lo, hi) = block.split_at_mut(half);
            let mut l_iter = lo.chunks_exact_mut(16);
            let mut h_iter = hi.chunks_exact_mut(16);
            for (l16, h16) in (&mut l_iter).zip(&mut h_iter) {
                for (l4, h4) in l16.chunks_exact_mut(4).zip(h16.chunks_exact_mut(4)) {
                    let x0 = f64x4::from_slice(l4);
                    let x1 = f64x4::from_slice(h4);
                    let x0s = x0.swap_adjacent();
                    let x1s = x1.swap_adjacent();
                    ((c0 * x0 + d0 * x0s) + (c1 * x1 + d1 * x1s)).write_to_slice(l4);
                    ((c2 * x0 + d2 * x0s) + (c3 * x1 + d3 * x1s)).write_to_slice(h4);
                }
            }
            for (l4, h4) in l_iter
                .into_remainder()
                .chunks_exact_mut(4)
                .zip(h_iter.into_remainder().chunks_exact_mut(4))
            {
                let x0 = f64x4::from_slice(l4);
                let x1 = f64x4::from_slice(h4);
                let x0s = x0.swap_adjacent();
                let x1s = x1.swap_adjacent();
                ((c0 * x0 + d0 * x0s) + (c1 * x1 + d1 * x1s)).write_to_slice(l4);
                ((c2 * x0 + d2 * x0s) + (c3 * x1 + d3 * x1s)).write_to_slice(h4);
            }
        }
        return;
    }
    for block in fs.chunks_exact_mut(2 * half) {
        let (lo, hi) = block.split_at_mut(half);
        for (l4, h4) in lo.chunks_exact_mut(4).zip(hi.chunks_exact_mut(4)) {
            let x0 = f64x4::from_slice(l4);
            let x1 = f64x4::from_slice(h4);
            let x0s = x0.swap_adjacent();
            let x1s = x1.swap_adjacent();
            ((c0 * x0 + d0 * x0s) + (c1 * x1 + d1 * x1s)).write_to_slice(l4);
            ((c2 * x0 + d2 * x0s) + (c3 * x1 + d3 * x1s)).write_to_slice(h4);
        }
    }
}

multiversioned! {
    /// Uncontrolled dense 2×2 sweep, bit-identical to the scalar pair loop.
    single_qubit => single_qubit_body(amps: &mut [Complex64], bit: usize, m: &[Complex64; 4])
}

// ---------------------------------------------------------------------------
// Diagonal sweep: lo half ×= p0, hi half ×= p1.
// ---------------------------------------------------------------------------

#[inline(always)]
fn diagonal_body(amps: &mut [Complex64], bit: usize, phases: &[Complex64; 2]) {
    let fs = as_f64_mut(amps);
    if bit == 0 {
        // [a0·p0, a1·p1] within each vector: alternate the coefficients.
        let c = f64x4::new([phases[0].re, phases[0].re, phases[1].re, phases[1].re]);
        let d = f64x4::new([-phases[0].im, phases[0].im, -phases[1].im, phases[1].im]);
        for chunk in fs.chunks_exact_mut(4) {
            let x = f64x4::from_slice(chunk);
            (c * x + d * x.swap_adjacent()).write_to_slice(chunk);
        }
        return;
    }
    let (c0, d0) = (f64x4::splat(phases[0].re), im_coeff(phases[0]));
    let (c1, d1) = (f64x4::splat(phases[1].re), im_coeff(phases[1]));
    let half = 2usize << bit;
    for block in fs.chunks_exact_mut(2 * half) {
        let (lo, hi) = block.split_at_mut(half);
        for l4 in lo.chunks_exact_mut(4) {
            let x = f64x4::from_slice(l4);
            (c0 * x + d0 * x.swap_adjacent()).write_to_slice(l4);
        }
        for h4 in hi.chunks_exact_mut(4) {
            let x = f64x4::from_slice(h4);
            (c1 * x + d1 * x.swap_adjacent()).write_to_slice(h4);
        }
    }
}

multiversioned! {
    /// Uncontrolled diagonal sweep, bit-identical to the scalar half loops.
    diagonal => diagonal_body(amps: &mut [Complex64], bit: usize, phases: &[Complex64; 2])
}

// No explicit phase-shift sweep: the uncontrolled `PhaseShift` kernel is a
// contiguous multiply-the-hi-half loop that LLVM auto-vectorizes at full
// width already — a manual `f64x4` body measured *slower* than the scalar
// loop on the 16-qubit benchmark, so `kernels.rs` keeps the scalar body and
// this module only supplies the controlled-run helper (`scale_run`) below.

// ---------------------------------------------------------------------------
// Contiguous-run helpers for *controlled* sweeps.  Bits below the lowest
// fixed bit pass through the free-index expansion untouched, so each step
// of `2^fixed[0]` free indices is a contiguous amplitude run; the kernels
// in `kernels.rs` walk those runs and apply these bodies (same arithmetic
// per amplitude as the scalar expand loop — bit-identical, just batched).
// ---------------------------------------------------------------------------

#[inline(always)]
fn scale_run_body(amps: &mut [Complex64], w: Complex64) {
    let c = f64x4::splat(w.re);
    let d = im_coeff(w);
    for c4 in as_f64_mut(amps).chunks_exact_mut(4) {
        let x = f64x4::from_slice(c4);
        (c * x + d * x.swap_adjacent()).write_to_slice(c4);
    }
}

multiversioned! {
    /// Multiply a contiguous run (length a power of two ≥ 2) by `w`,
    /// bit-identical to the scalar `*a *= w` loop.
    scale_run => scale_run_body(amps: &mut [Complex64], w: Complex64)
}

#[inline(always)]
fn single_qubit_runs_body(lo: &mut [Complex64], hi: &mut [Complex64], m: &[Complex64; 4]) {
    let (c0, d0) = (f64x4::splat(m[0].re), im_coeff(m[0]));
    let (c1, d1) = (f64x4::splat(m[1].re), im_coeff(m[1]));
    let (c2, d2) = (f64x4::splat(m[2].re), im_coeff(m[2]));
    let (c3, d3) = (f64x4::splat(m[3].re), im_coeff(m[3]));
    let (lf, hf) = (as_f64_mut(lo), as_f64_mut(hi));
    // Same unrolled body as the uncontrolled sweep (a fully-unrolled block
    // of independent dependency chains per iteration); the short tail of
    // small runs falls through to the single-vector loop below.
    let mut l_iter = lf.chunks_exact_mut(16);
    let mut h_iter = hf.chunks_exact_mut(16);
    for (l16, h16) in (&mut l_iter).zip(&mut h_iter) {
        for (l4, h4) in l16.chunks_exact_mut(4).zip(h16.chunks_exact_mut(4)) {
            let x0 = f64x4::from_slice(l4);
            let x1 = f64x4::from_slice(h4);
            let x0s = x0.swap_adjacent();
            let x1s = x1.swap_adjacent();
            ((c0 * x0 + d0 * x0s) + (c1 * x1 + d1 * x1s)).write_to_slice(l4);
            ((c2 * x0 + d2 * x0s) + (c3 * x1 + d3 * x1s)).write_to_slice(h4);
        }
    }
    for (l4, h4) in l_iter
        .into_remainder()
        .chunks_exact_mut(4)
        .zip(h_iter.into_remainder().chunks_exact_mut(4))
    {
        let x0 = f64x4::from_slice(l4);
        let x1 = f64x4::from_slice(h4);
        let x0s = x0.swap_adjacent();
        let x1s = x1.swap_adjacent();
        ((c0 * x0 + d0 * x0s) + (c1 * x1 + d1 * x1s)).write_to_slice(l4);
        ((c2 * x0 + d2 * x0s) + (c3 * x1 + d3 * x1s)).write_to_slice(h4);
    }
}

multiversioned! {
    /// Dense 2×2 update on paired contiguous runs (length a power of two
    /// ≥ 2), bit-identical to the scalar pair loop.
    single_qubit_runs => single_qubit_runs_body(
        lo: &mut [Complex64],
        hi: &mut [Complex64],
        m: &[Complex64; 4],
    )
}

// ---------------------------------------------------------------------------
// DiagonalK table sweep: a_i ×= table[gather(i)].  Amplitudes in a run of
// 2^min_bit consecutive indices share one table entry, so runs vectorize
// with splats when min_bit ≥ 1 and with alternating coefficients otherwise.
// ---------------------------------------------------------------------------

#[inline(always)]
fn diagonal_k_body(amps: &mut [Complex64], bits: &[usize], table: &[Complex64]) {
    let gather = |i: usize| -> usize {
        bits.iter()
            .enumerate()
            .fold(0usize, |acc, (t, &b)| acc | (((i >> b) & 1) << t))
    };
    let min_bit = bits.iter().copied().min().unwrap_or(0);
    if min_bit == 0 {
        // Adjacent amplitudes have distinct table entries: look two up per
        // vector and alternate them (register width ≥ 4 since k ≥ 2).
        let n = amps.len();
        let fs = as_f64_mut(amps);
        for (v, chunk) in fs.chunks_exact_mut(4).enumerate().take(n / 2) {
            let p0 = table[gather(2 * v)];
            let p1 = table[gather(2 * v + 1)];
            let c = f64x4::new([p0.re, p0.re, p1.re, p1.re]);
            let d = f64x4::new([-p0.im, p0.im, -p1.im, p1.im]);
            let x = f64x4::from_slice(chunk);
            (c * x + d * x.swap_adjacent()).write_to_slice(chunk);
        }
        return;
    }
    let run = 1usize << min_bit; // complexes per constant-entry run, ≥ 2
    for (r, chunk) in amps.chunks_exact_mut(run).enumerate() {
        let p = table[gather(r * run)];
        let c = f64x4::splat(p.re);
        let d = im_coeff(p);
        for c4 in as_f64_mut(chunk).chunks_exact_mut(4) {
            let x = f64x4::from_slice(c4);
            (c * x + d * x.swap_adjacent()).write_to_slice(c4);
        }
    }
}

multiversioned! {
    /// Uncontrolled k-qubit diagonal table sweep, bit-identical to the
    /// scalar per-amplitude loop.
    diagonal_k => diagonal_k_body(amps: &mut [Complex64], bits: &[usize], table: &[Complex64])
}

// ---------------------------------------------------------------------------
// Generic-kernel subspace matvec: out = M · src over one gathered 2^k
// block, four output rows per lane set on column-major re/im planes of M.
// Used by both controlled and uncontrolled generic ops (the gather/scatter
// around it is index arithmetic either way).
// ---------------------------------------------------------------------------

#[inline(always)]
fn generic_matvec_body(
    col_re: &[f64],
    col_im: &[f64],
    dim: usize,
    src: &[Complex64],
    out: &mut [Complex64],
) {
    debug_assert!(dim.is_multiple_of(4), "dim = 2^k with k ≥ 2");
    debug_assert_eq!(src.len(), dim);
    debug_assert_eq!(out.len(), dim);
    let mut r = 0usize;
    while r < dim {
        let mut acc_re = f64x4::ZERO;
        let mut acc_im = f64x4::ZERO;
        for (c, s) in src.iter().enumerate() {
            let m_re = f64x4::from_slice(&col_re[c * dim + r..]);
            let m_im = f64x4::from_slice(&col_im[c * dim + r..]);
            let s_re = f64x4::splat(s.re);
            let s_im = f64x4::splat(s.im);
            // acc += m·s with the scalar kernel's exact products and sums:
            // re += m.re·s.re − m.im·s.im, im += m.re·s.im + m.im·s.re.
            acc_re += m_re * s_re - m_im * s_im;
            acc_im += m_re * s_im + m_im * s_re;
        }
        let re = acc_re.to_array();
        let im = acc_im.to_array();
        for l in 0..4 {
            out[r + l] = Complex64::new(re[l], im[l]);
        }
        r += 4;
    }
}

multiversioned! {
    /// `out = M·src` on one gathered subspace block, bit-identical to the
    /// scalar row loop (ascending-column accumulation, no fma).
    generic_matvec => generic_matvec_body(
        col_re: &[f64],
        col_im: &[f64],
        dim: usize,
        src: &[Complex64],
        out: &mut [Complex64],
    )
}

/// Whether the SIMD bodies should be used right now (single thread-local
/// read; the kernels consult this once per gate application).
#[inline]
pub(crate) fn active() -> bool {
    simd_kernels_enabled()
}
