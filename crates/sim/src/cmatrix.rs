//! Dense complex matrices.
//!
//! Quantum gates, circuit unitaries and block-encodings are complex-valued, so
//! the real-valued `qls_linalg::Matrix` cannot represent them.  This module
//! provides the small dense complex-matrix type used to (i) define gate
//! matrices, (ii) extract the full unitary of a circuit for verification on
//! small registers, and (iii) check the defining property of block-encodings,
//! `A/α = (⟨0|_a ⊗ I) U (|0⟩_a ⊗ I)`.

use num_complex::Complex64;
use qls_linalg::Matrix;
use std::ops::{Index, IndexMut};

/// A dense row-major complex matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct CMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMatrix {
    /// Create a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMatrix {
            rows,
            cols,
            data: vec![Complex64::new(0.0, 0.0); rows * cols],
        }
    }

    /// Create the identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Complex64::new(1.0, 0.0);
        }
        m
    }

    /// Create a matrix from a row-major vector of complex entries.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), rows * cols, "from_vec: length mismatch");
        CMatrix { rows, cols, data }
    }

    /// Create a matrix from a row-major slice of real entries.
    pub fn from_real(a: &Matrix<f64>) -> Self {
        CMatrix {
            rows: a.nrows(),
            cols: a.ncols(),
            data: a
                .as_slice()
                .iter()
                .map(|&x| Complex64::new(x, 0.0))
                .collect(),
        }
    }

    /// Build from a function of the indices.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Complex64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        CMatrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// Borrow the underlying row-major storage.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// The real part as a real matrix.
    pub fn real(&self) -> Matrix<f64> {
        Matrix::from_f64_slice(
            self.rows,
            self.cols,
            &self.data.iter().map(|c| c.re).collect::<Vec<_>>(),
        )
    }

    /// The imaginary part as a real matrix.
    pub fn imag(&self) -> Matrix<f64> {
        Matrix::from_f64_slice(
            self.rows,
            self.cols,
            &self.data.iter().map(|c| c.im).collect::<Vec<_>>(),
        )
    }

    /// Matrix product.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(self.cols, other.rows, "matmul: dimension mismatch");
        let mut out = Self::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == Complex64::new(0.0, 0.0) {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += a * other[(k, j)];
                }
            }
        }
        out
    }

    /// Matrix-vector product.
    pub fn matvec(&self, x: &[Complex64]) -> Vec<Complex64> {
        assert_eq!(self.cols, x.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| {
                (0..self.cols)
                    .map(|j| self[(i, j)] * x[j])
                    .sum::<Complex64>()
            })
            .collect()
    }

    /// Conjugate transpose (adjoint).
    pub fn adjoint(&self) -> Self {
        let mut out = Self::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)].conj();
            }
        }
        out
    }

    /// Kronecker (tensor) product `self ⊗ other`.
    pub fn kron(&self, other: &Self) -> Self {
        let mut out = Self::zeros(self.rows * other.rows, self.cols * other.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                for k in 0..other.rows {
                    for l in 0..other.cols {
                        out[(i * other.rows + k, j * other.cols + l)] = a * other[(k, l)];
                    }
                }
            }
        }
        out
    }

    /// Extract the sub-block with rows `r0..r0+h` and columns `c0..c0+w`.
    pub fn block(&self, r0: usize, c0: usize, h: usize, w: usize) -> Self {
        assert!(
            r0 + h <= self.rows && c0 + w <= self.cols,
            "block out of range"
        );
        Self::from_fn(h, w, |i, j| self[(r0 + i, c0 + j)])
    }

    /// Maximum absolute entry-wise difference with another matrix.
    pub fn max_abs_diff(&self, other: &Self) -> f64 {
        assert_eq!(self.rows, other.rows, "max_abs_diff: shape mismatch");
        assert_eq!(self.cols, other.cols, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).norm())
            .fold(0.0, f64::max)
    }

    /// The diagonal entries when the matrix is *exactly* diagonal (every
    /// off-diagonal entry equals zero bit-for-bit), `None` otherwise.
    ///
    /// The exactness matters to the callers: the gate compiler and the fusion
    /// pass use this to route computational-basis-diagonal operations to the
    /// one-multiply-per-amplitude diagonal kernels, which is only valid when
    /// the off-diagonal part is truly absent (no tolerance).
    pub fn diagonal(&self) -> Option<Vec<Complex64>> {
        if self.rows != self.cols {
            return None;
        }
        let zero = Complex64::new(0.0, 0.0);
        for r in 0..self.rows {
            for c in 0..self.cols {
                if r != c && self[(r, c)] != zero {
                    return None;
                }
            }
        }
        Some((0..self.rows).map(|i| self[(i, i)]).collect())
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|c| c.norm_sqr()).sum::<f64>().sqrt()
    }

    /// True when `U† U = I` within `tol` (entry-wise).
    pub fn is_unitary(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let prod = self.adjoint().matmul(self);
        prod.max_abs_diff(&Self::identity(self.rows)) <= tol
    }

    /// True when the matrix equals its adjoint within `tol`.
    pub fn is_hermitian(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.max_abs_diff(&self.adjoint()) <= tol
    }

    /// Scale every entry in place.
    pub fn scale(&mut self, s: Complex64) {
        for x in &mut self.data {
            *x *= s;
        }
    }
}

impl Index<(usize, usize)> for CMatrix {
    type Output = Complex64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMatrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

// Hand-written (not derived) so the wire format stays flat — entries as an
// interleaved `[re, im, re, im, …]` float sequence — and so deserialization
// can validate the `data.len() == rows·cols` invariant the private fields
// guarantee, returning a decode error instead of a corrupt matrix.  Used by
// the fused-circuit artifact cache (`Gate::Unitary` payloads).
impl serde::Serialize for CMatrix {
    fn serialize(&self) -> serde::Value {
        let mut entries = Vec::with_capacity(self.data.len() * 2);
        for z in &self.data {
            entries.push(serde::Value::Float(z.re));
            entries.push(serde::Value::Float(z.im));
        }
        serde::Value::Map(vec![
            ("rows".to_string(), serde::Value::Int(self.rows as i64)),
            ("cols".to_string(), serde::Value::Int(self.cols as i64)),
            ("data".to_string(), serde::Value::Seq(entries)),
        ])
    }
}

impl<'de> serde::Deserialize<'de> for CMatrix {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        let rows = usize::deserialize(value.field("CMatrix", "rows")?)?;
        let cols = usize::deserialize(value.field("CMatrix", "cols")?)?;
        let flat = Vec::<f64>::deserialize(value.field("CMatrix", "data")?)?;
        let needed = rows.checked_mul(cols).and_then(|n| n.checked_mul(2));
        if needed != Some(flat.len()) {
            return Err(serde::DeError::new(format!(
                "CMatrix: {rows}x{cols} needs {needed:?} floats, found {}",
                flat.len()
            )));
        }
        let data = flat
            .chunks_exact(2)
            .map(|p| Complex64::new(p[0], p[1]))
            .collect();
        Ok(CMatrix { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn identity_and_matmul() {
        let i2 = CMatrix::identity(2);
        let a = CMatrix::from_vec(
            2,
            2,
            vec![c(1.0, 1.0), c(0.0, 2.0), c(3.0, 0.0), c(1.0, -1.0)],
        );
        assert_eq!(a.matmul(&i2), a);
        assert_eq!(i2.matmul(&a), a);
    }

    #[test]
    fn adjoint_of_product_reverses() {
        let a = CMatrix::from_fn(3, 3, |i, j| c((i + j) as f64, (i as f64) - (j as f64)));
        let b = CMatrix::from_fn(3, 3, |i, j| c((i * j) as f64 * 0.5, 1.0));
        let lhs = a.matmul(&b).adjoint();
        let rhs = b.adjoint().matmul(&a.adjoint());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn kron_dimensions_and_values() {
        let x = CMatrix::from_vec(
            2,
            2,
            vec![c(0.0, 0.0), c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0)],
        );
        let i2 = CMatrix::identity(2);
        let xi = x.kron(&i2);
        assert_eq!(xi.nrows(), 4);
        // (X ⊗ I)|00> = |10>, i.e. column 0 has a 1 in row 2.
        assert_eq!(xi[(2, 0)], c(1.0, 0.0));
        assert_eq!(xi[(0, 0)], c(0.0, 0.0));
    }

    #[test]
    fn unitarity_check() {
        let h = CMatrix::from_vec(
            2,
            2,
            vec![
                c(1.0 / 2f64.sqrt(), 0.0),
                c(1.0 / 2f64.sqrt(), 0.0),
                c(1.0 / 2f64.sqrt(), 0.0),
                c(-1.0 / 2f64.sqrt(), 0.0),
            ],
        );
        assert!(h.is_unitary(1e-12));
        assert!(h.is_hermitian(1e-12));
        let not_unitary = CMatrix::from_vec(
            2,
            2,
            vec![c(1.0, 0.0), c(1.0, 0.0), c(0.0, 0.0), c(1.0, 0.0)],
        );
        assert!(!not_unitary.is_unitary(1e-12));
    }

    #[test]
    fn block_extraction() {
        let m = CMatrix::from_fn(4, 4, |i, j| c((i * 4 + j) as f64, 0.0));
        let b = m.block(0, 0, 2, 2);
        assert_eq!(b[(0, 0)], c(0.0, 0.0));
        assert_eq!(b[(1, 1)], c(5.0, 0.0));
        let lower = m.block(2, 2, 2, 2);
        assert_eq!(lower[(0, 0)], c(10.0, 0.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let m = CMatrix::from_fn(3, 3, |i, j| c(i as f64, j as f64));
        let x = vec![c(1.0, 0.0), c(0.0, 1.0), c(-1.0, 0.0)];
        let y = m.matvec(&x);
        for i in 0..3 {
            let expect: Complex64 = (0..3).map(|j| m[(i, j)] * x[j]).sum();
            assert!((y[i] - expect).norm() < 1e-14);
        }
    }

    #[test]
    fn from_real_roundtrip() {
        let a = Matrix::from_f64_slice(2, 2, &[1.0, -2.0, 3.0, 0.5]);
        let ca = CMatrix::from_real(&a);
        assert_eq!(ca.real(), a);
        assert_eq!(ca.imag().norm_frobenius(), 0.0);
    }
}
