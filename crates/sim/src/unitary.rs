//! Extraction of the full unitary matrix of a circuit.
//!
//! Block-encodings are *defined* by a property of the circuit's unitary
//! (`A/α` sits in the top-left block), so verification and the exact
//! emulation path both need the dense unitary.  This is only feasible for
//! small registers (the cost is `2^n` circuit runs of `2^n` amplitudes), which
//! matches the paper's experimental regime (n = 4 data qubits plus a few
//! ancillas).

use crate::circuit::Circuit;
use crate::cmatrix::CMatrix;
use crate::executor::QuantumExecutor;
use crate::state::StateVector;
use num_complex::Complex64;

/// Compute the dense unitary implemented by a circuit by running it on every
/// computational basis state (columns of the unitary).
///
/// The circuit is optimized and compiled exactly once
/// ([`QuantumExecutor::new`], default fusion), and the `2^n` basis columns go
/// through [`QuantumExecutor::run_batch`] in bounded chunks, so the
/// extraction gets both the fused sweeps and the engine's coarse-grained
/// register fan-out on multi-core machines while only a chunk of live
/// registers ever sits next to the `4^n` output matrix.
pub fn circuit_unitary(circuit: &Circuit) -> CMatrix {
    // 256 columns per batch: plenty of registers for the coarse-grained
    // fan-out, bounded transient allocation.
    const COLUMNS_PER_BATCH: usize = 256;
    let n = circuit.num_qubits();
    let dim = 1usize << n;
    let executor = QuantumExecutor::new(circuit);
    let mut u = CMatrix::zeros(dim, dim);
    for chunk_start in (0..dim).step_by(COLUMNS_PER_BATCH) {
        let chunk_end = (chunk_start + COLUMNS_PER_BATCH).min(dim);
        let columns = executor.run_batch_vec(
            (chunk_start..chunk_end)
                .map(|col| StateVector::basis_state(n, col))
                .collect(),
        );
        for (offset, state) in columns.iter().enumerate() {
            for (row, &amp) in state.amplitudes().iter().enumerate() {
                u[(row, chunk_start + offset)] = amp;
            }
        }
    }
    u
}

/// Apply a circuit to an arbitrary input vector of dimension `2^n` (not
/// necessarily normalised); returns the output vector.  Equivalent to
/// multiplying by [`circuit_unitary`] but without forming the matrix.
/// Gate application is linear, so the input is used as-is — no
/// normalise/renormalise round trip.
pub fn apply_circuit_to_vector(circuit: &Circuit, input: &[Complex64]) -> Vec<Complex64> {
    let n = circuit.num_qubits();
    assert_eq!(input.len(), 1usize << n, "input dimension mismatch");
    let mut sv = StateVector::from_amplitudes_unchecked(input.to_vec());
    sv.apply_circuit(circuit);
    sv.into_amplitudes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn unitary_of_single_hadamard() {
        let mut c = Circuit::new(1);
        c.h(0);
        let u = circuit_unitary(&c);
        let expected = Gate::H.matrix();
        assert!(u.max_abs_diff(&expected) < 1e-14);
    }

    #[test]
    fn unitary_of_cnot() {
        let mut c = Circuit::new(2);
        c.cx(0, 1);
        let u = circuit_unitary(&c);
        // Little-endian: control = qubit 0, target = qubit 1.
        // |00>->|00>, |01>->|11>, |10>->|10>, |11>->|01>.
        let one = Complex64::new(1.0, 0.0);
        assert_eq!(u[(0, 0)], one);
        assert_eq!(u[(3, 1)], one);
        assert_eq!(u[(2, 2)], one);
        assert_eq!(u[(1, 3)], one);
        assert!(u.is_unitary(1e-13));
    }

    #[test]
    fn unitary_is_always_unitary_for_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cry(0, 1, 0.9)
            .t(2)
            .ccx(0, 1, 2)
            .rz(1, -0.4)
            .swap(0, 2)
            .phase(2, 1.3);
        let u = circuit_unitary(&c);
        assert!(u.is_unitary(1e-12));
        // Adjoint circuit gives the adjoint unitary.
        let uadj = circuit_unitary(&c.adjoint());
        assert!(uadj.max_abs_diff(&u.adjoint()) < 1e-12);
    }

    #[test]
    fn apply_to_vector_matches_matrix_product() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).rz(1, 0.5);
        let u = circuit_unitary(&c);
        let input = vec![
            Complex64::new(0.3, 0.1),
            Complex64::new(-0.2, 0.0),
            Complex64::new(0.5, -0.4),
            Complex64::new(0.1, 0.2),
        ];
        let via_circuit = apply_circuit_to_vector(&c, &input);
        let via_matrix = u.matvec(&input);
        for (a, b) in via_circuit.iter().zip(&via_matrix) {
            assert!((a - b).norm() < 1e-13);
        }
    }

    #[test]
    fn apply_to_zero_vector() {
        let mut c = Circuit::new(1);
        c.h(0);
        let out = apply_circuit_to_vector(&c, &[Complex64::new(0.0, 0.0); 2]);
        assert!(out.iter().all(|a| a.norm() == 0.0));
    }
}
