//! Circuit resource accounting.
//!
//! Section III-C4 of the paper expresses the quantum cost in *T gates*
//! "because the depth of the circuit requires to use a fault-tolerant quantum
//! computer", citing the standard decompositions of multi-controlled Toffolis
//! and adders ([24], [34]) and rotation synthesis.  This module turns a
//! [`Circuit`] into those estimates: gate counts by class, circuit depth,
//! number of rotations, and a configurable T-count estimate.

use crate::circuit::Circuit;
pub use crate::fuse::CircuitStats;
use crate::fuse::FusionOptions;
use crate::kernels::CompiledCircuit;
use serde::Serialize;

/// Parameters of the T-count model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct TCountModel {
    /// T gates per single-qubit rotation synthesised to accuracy
    /// `rotation_synthesis_accuracy` (the standard repeat-until-success /
    /// Ross–Selinger estimate is ≈ 3·log2(1/ε) + O(1)).
    pub t_per_rotation: usize,
    /// Synthesis accuracy used to derive `t_per_rotation` (kept for reporting).
    pub rotation_synthesis_accuracy: f64,
    /// T gates per Toffoli (7 for the textbook decomposition, 4 with measurement
    /// assistance).
    pub t_per_toffoli: usize,
}

impl TCountModel {
    /// Model with rotation synthesis at accuracy ε (T/rotation ≈ 3·log2(1/ε) + 10).
    pub fn with_rotation_accuracy(epsilon: f64) -> Self {
        assert!(epsilon > 0.0 && epsilon < 1.0);
        TCountModel {
            t_per_rotation: (3.0 * (1.0 / epsilon).log2()).ceil() as usize + 10,
            rotation_synthesis_accuracy: epsilon,
            t_per_toffoli: 7,
        }
    }
}

impl Default for TCountModel {
    fn default() -> Self {
        TCountModel::with_rotation_accuracy(1e-10)
    }
}

/// Resource estimate of a circuit.
#[derive(Debug, Clone, Serialize)]
pub struct ResourceEstimate {
    /// Number of qubits of the register.
    pub num_qubits: usize,
    /// Total number of operations.
    pub gate_count: usize,
    /// Circuit depth (ASAP scheduling).
    pub depth: usize,
    /// Number of Clifford gates (including controlled-Clifford counted naively).
    pub clifford_count: usize,
    /// Number of explicit T/T† gates.
    pub t_gate_count: usize,
    /// Number of parameterised rotations (Rx/Ry/Rz/Phase).
    pub rotation_count: usize,
    /// Number of two-qubit operations (one target + one control, CX/CZ/…).
    pub two_qubit_count: usize,
    /// Number of multi-controlled operations (≥ 2 controls).
    pub multi_controlled_count: usize,
    /// Estimated total T count under the model.
    pub estimated_t_count: usize,
}

/// Estimate the fault-tolerant resources of a circuit.
///
/// Multi-controlled gates with `c ≥ 2` controls are costed as `2(c − 1)`
/// Toffolis (the standard ancilla-based ladder decomposition referenced by the
/// paper), plus the synthesis cost of the base gate when it is a rotation.
pub fn estimate_resources(circuit: &Circuit, model: &TCountModel) -> ResourceEstimate {
    let mut clifford = 0usize;
    let mut t_gates = 0usize;
    let mut rotations = 0usize;
    let mut two_qubit = 0usize;
    let mut multi_controlled = 0usize;
    let mut estimated_t = 0usize;

    for op in circuit.operations() {
        let controls = op.controls.len();
        let width = op.targets.len() + controls;
        if width == 2 {
            two_qubit += 1;
        }
        if controls >= 2 {
            multi_controlled += 1;
            // Ladder decomposition into 2(c-1) Toffolis.
            estimated_t += 2 * (controls - 1) * model.t_per_toffoli;
        }
        use crate::gate::Gate;
        match &op.gate {
            Gate::T | Gate::Tdg => {
                t_gates += 1;
                estimated_t += 1;
            }
            g if g.is_clifford() => {
                clifford += 1;
                // A singly-controlled Clifford is still Clifford (e.g. CX, CZ);
                // doubly-controlled versions were already charged above.
            }
            g if g.is_rotation() => {
                rotations += 1;
                estimated_t += model.t_per_rotation;
                if controls == 1 {
                    // A controlled rotation decomposes into 2 CX + 2 rotations.
                    estimated_t += model.t_per_rotation;
                }
            }
            Gate::Unitary(m) => {
                // Generic k-qubit unitary: charge the asymptotic 4^k rotation
                // synthesis cost (only used by the emulation-mode encodings,
                // where the estimate is reported but not claimed tight).
                let k = (m.nrows() as f64).log2() as u32;
                rotations += 1;
                estimated_t += model.t_per_rotation * 4usize.pow(k);
            }
            _ => {
                clifford += 1;
            }
        }
    }

    ResourceEstimate {
        num_qubits: circuit.num_qubits(),
        gate_count: circuit.gate_count(),
        depth: circuit.depth(),
        clifford_count: clifford,
        t_gate_count: t_gates,
        rotation_count: rotations,
        two_qubit_count: two_qubit,
        multi_controlled_count: multi_controlled,
        estimated_t_count: estimated_t,
    }
}

/// Simulation-side cost report of a circuit: what the optimizer pass of
/// [`crate::fuse`] does to the op count and the estimated per-application
/// sweep work (default [`FusionOptions`]).
///
/// This complements [`estimate_resources`]: that prices the circuit on
/// fault-tolerant *hardware* (T counts, depth), this prices it on the
/// *simulator*, so the figure/table binaries can print both side by side.
/// Note this compiles the optimized circuit once (it shows up in
/// [`crate::kernels::circuit_compile_count`]) — it is a reporting helper,
/// not something to call on a hot path.
pub fn fusion_stats(circuit: &Circuit) -> CircuitStats {
    CompiledCircuit::optimized_with(circuit, circuit.num_qubits(), &FusionOptions::default()).1
}

/// Report of the sharded execution model ([`crate::shard`]) for one circuit
/// at one shard count: per-shard memory and how the fused op list splits
/// into shard-local sweeps, pairwise exchange rounds, and gather fallbacks.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct ShardingStats {
    /// Register width `n`.
    pub num_qubits: usize,
    /// Number of worker-owned chunks, `2^k`.
    pub num_shards: usize,
    /// The shard boundary `m = n − k`: qubits below it are shard-local.
    pub shard_boundary: usize,
    /// Amplitudes per chunk, `2^m`.
    pub per_shard_amplitudes: usize,
    /// Amplitude bytes owned by each worker.
    pub per_shard_bytes: usize,
    /// Fused ops served embarrassingly parallel per shard.
    pub local_ops: usize,
    /// Fused ops served inside pairwise exchange rounds.
    pub exchanged_ops: usize,
    /// Fused ops served by the gather/scatter fallback.
    pub flat_ops: usize,
    /// Pairwise exchange rounds per application — the communication metric
    /// the low-support fusion preference minimizes.
    pub exchange_rounds: usize,
    /// Full gather/scatter fallbacks per application.
    pub flat_gathers: usize,
}

/// [`fusion_stats`]-style report of the sharded execution model: fuse the
/// circuit with the low-support preference armed at the shard boundary
/// (static cost model, so the report is machine-independent), compile the
/// sharded plan, and summarize it.  Like [`fusion_stats`] this compiles once
/// (one [`crate::kernels::circuit_compile_count`] tick) — a reporting
/// helper, not a hot-path call.
pub fn sharding_stats(circuit: &Circuit, num_shards: usize) -> ShardingStats {
    use crate::fuse::optimize_circuit_for;
    use crate::shard::ShardedCircuit;
    let n = circuit.num_qubits();
    let k = num_shards.trailing_zeros() as usize;
    let boundary = n.saturating_sub(k);
    let opts = FusionOptions::default().with_shard_boundary(boundary);
    let fused = optimize_circuit_for(circuit, n, &opts);
    let plan = ShardedCircuit::compile(&fused, n, num_shards);
    ShardingStats {
        num_qubits: n,
        num_shards: plan.num_shards(),
        shard_boundary: plan.local_qubits(),
        per_shard_amplitudes: 1usize << plan.local_qubits(),
        per_shard_bytes: (1usize << plan.local_qubits())
            * std::mem::size_of::<num_complex::Complex64>(),
        local_ops: plan.local_ops(),
        exchanged_ops: plan.exchanged_ops(),
        flat_ops: plan.flat_ops(),
        exchange_rounds: plan.exchange_rounds(),
        flat_gathers: plan.flat_gathers(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;

    #[test]
    fn t_count_model_scales_with_accuracy() {
        let coarse = TCountModel::with_rotation_accuracy(1e-3);
        let fine = TCountModel::with_rotation_accuracy(1e-12);
        assert!(fine.t_per_rotation > coarse.t_per_rotation);
    }

    #[test]
    fn clifford_only_circuit_has_no_t() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).s(2).swap(0, 2);
        let est = estimate_resources(&c, &TCountModel::default());
        assert_eq!(est.estimated_t_count, 0);
        assert_eq!(est.t_gate_count, 0);
        assert_eq!(est.rotation_count, 0);
        assert_eq!(est.gate_count, 5);
    }

    #[test]
    fn explicit_t_gates_counted() {
        let mut c = Circuit::new(1);
        c.t(0).t(0).gate(crate::gate::Gate::Tdg, &[0]);
        let est = estimate_resources(&c, &TCountModel::default());
        assert_eq!(est.t_gate_count, 3);
        assert_eq!(est.estimated_t_count, 3);
    }

    #[test]
    fn rotations_charged_by_model() {
        let model = TCountModel::with_rotation_accuracy(1e-10);
        let mut c = Circuit::new(2);
        c.ry(0, 0.3).rz(1, 0.4);
        let est = estimate_resources(&c, &model);
        assert_eq!(est.rotation_count, 2);
        assert_eq!(est.estimated_t_count, 2 * model.t_per_rotation);
    }

    #[test]
    fn toffoli_charged_seven_t() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        let est = estimate_resources(&c, &TCountModel::default());
        assert_eq!(est.multi_controlled_count, 1);
        // 2(c-1) = 2 Toffoli-equivalents at 7 T each = 14 with the ladder model.
        assert_eq!(est.estimated_t_count, 14);
    }

    #[test]
    fn multi_controlled_scales_linearly_in_controls() {
        let model = TCountModel::default();
        let mut c3 = Circuit::new(4);
        c3.mcx(&[0, 1, 2], 3);
        let mut c5 = Circuit::new(6);
        c5.mcx(&[0, 1, 2, 3, 4], 5);
        let t3 = estimate_resources(&c3, &model).estimated_t_count;
        let t5 = estimate_resources(&c5, &model).estimated_t_count;
        assert!(t5 > t3);
        assert_eq!(t3, 2 * 2 * model.t_per_toffoli);
        assert_eq!(t5, 2 * 4 * model.t_per_toffoli);
    }

    #[test]
    fn fusion_stats_reports_the_optimizer_effect() {
        let mut c = Circuit::new(2);
        c.rz(0, 0.3).t(0).phase(0, -0.2).h(1);
        let stats = fusion_stats(&c);
        assert_eq!(stats.raw_ops, 4);
        // The rz/t/phase diagonal chain merges, and the combined 2-qubit
        // support lets the h fuse in too.
        assert_eq!(stats.fused_ops, 1);
        assert!(stats.op_reduction() >= 4.0);
        assert!(stats.fused_sweep_work <= stats.raw_sweep_work);
    }

    #[test]
    fn depth_and_width_reported() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).cx(0, 1).cx(2, 3).ccx(0, 1, 2);
        let est = estimate_resources(&c, &TCountModel::default());
        assert_eq!(est.num_qubits, 4);
        assert!(est.depth >= 3);
        assert_eq!(est.two_qubit_count, 2);
    }
}
