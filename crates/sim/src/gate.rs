//! Quantum gates.
//!
//! The gate set covers everything the paper's circuits need: the Clifford+T
//! generators used by the block-encodings, arbitrary rotations for state
//! preparation and the QSVT projector-controlled phase operators
//! `e^{iφ(2Π−I)}`, and arbitrary k-qubit unitaries for the exact
//! unitary-dilation block-encoding used in emulation mode.

use crate::cmatrix::CMatrix;
use num_complex::Complex64;
use serde::{Deserialize, Serialize};

fn c(re: f64, im: f64) -> Complex64 {
    Complex64::new(re, im)
}

/// A quantum gate (without its placement on qubits — see
/// [`crate::circuit::Operation`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Identity.
    I,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Hadamard.
    H,
    /// Phase gate S = diag(1, i).
    S,
    /// S†.
    Sdg,
    /// T = diag(1, e^{iπ/4}).
    T,
    /// T†.
    Tdg,
    /// Rotation about X: `exp(-i θ X / 2)`.
    Rx(f64),
    /// Rotation about Y: `exp(-i θ Y / 2)`.
    Ry(f64),
    /// Rotation about Z: `exp(-i θ Z / 2)`.
    Rz(f64),
    /// Phase gate diag(1, e^{iφ}).
    Phase(f64),
    /// Global phase `e^{iφ} I` (1-qubit placement, needed by QSVT projector
    /// rotations).
    GlobalPhase(f64),
    /// SWAP of two qubits.
    Swap,
    /// Arbitrary unitary on `k = log2(dim)` qubits.
    Unitary(CMatrix),
}

impl Gate {
    /// Number of target qubits the gate acts on.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Swap => 2,
            Gate::Unitary(m) => {
                let dim = m.nrows();
                debug_assert!(dim.is_power_of_two());
                dim.trailing_zeros() as usize
            }
            _ => 1,
        }
    }

    /// The gate's unitary matrix (dimension `2^arity`).
    pub fn matrix(&self) -> CMatrix {
        let inv_sqrt2 = 1.0 / 2f64.sqrt();
        match self {
            Gate::I => CMatrix::identity(2),
            Gate::X => CMatrix::from_vec(2, 2, vec![c(0., 0.), c(1., 0.), c(1., 0.), c(0., 0.)]),
            Gate::Y => CMatrix::from_vec(2, 2, vec![c(0., 0.), c(0., -1.), c(0., 1.), c(0., 0.)]),
            Gate::Z => CMatrix::from_vec(2, 2, vec![c(1., 0.), c(0., 0.), c(0., 0.), c(-1., 0.)]),
            Gate::H => CMatrix::from_vec(
                2,
                2,
                vec![
                    c(inv_sqrt2, 0.),
                    c(inv_sqrt2, 0.),
                    c(inv_sqrt2, 0.),
                    c(-inv_sqrt2, 0.),
                ],
            ),
            Gate::S => CMatrix::from_vec(2, 2, vec![c(1., 0.), c(0., 0.), c(0., 0.), c(0., 1.)]),
            Gate::Sdg => CMatrix::from_vec(2, 2, vec![c(1., 0.), c(0., 0.), c(0., 0.), c(0., -1.)]),
            Gate::T => CMatrix::from_vec(
                2,
                2,
                vec![
                    c(1., 0.),
                    c(0., 0.),
                    c(0., 0.),
                    c(
                        std::f64::consts::FRAC_1_SQRT_2,
                        std::f64::consts::FRAC_1_SQRT_2,
                    ),
                ],
            ),
            Gate::Tdg => CMatrix::from_vec(
                2,
                2,
                vec![
                    c(1., 0.),
                    c(0., 0.),
                    c(0., 0.),
                    c(
                        std::f64::consts::FRAC_1_SQRT_2,
                        -std::f64::consts::FRAC_1_SQRT_2,
                    ),
                ],
            ),
            Gate::Rx(theta) => {
                let (s, cos) = (theta / 2.0).sin_cos();
                CMatrix::from_vec(2, 2, vec![c(cos, 0.), c(0., -s), c(0., -s), c(cos, 0.)])
            }
            Gate::Ry(theta) => {
                let (s, cos) = (theta / 2.0).sin_cos();
                CMatrix::from_vec(2, 2, vec![c(cos, 0.), c(-s, 0.), c(s, 0.), c(cos, 0.)])
            }
            Gate::Rz(theta) => {
                let half = theta / 2.0;
                CMatrix::from_vec(
                    2,
                    2,
                    vec![
                        Complex64::from_polar(1.0, -half),
                        c(0., 0.),
                        c(0., 0.),
                        Complex64::from_polar(1.0, half),
                    ],
                )
            }
            Gate::Phase(phi) => CMatrix::from_vec(
                2,
                2,
                vec![
                    c(1., 0.),
                    c(0., 0.),
                    c(0., 0.),
                    Complex64::from_polar(1.0, *phi),
                ],
            ),
            Gate::GlobalPhase(phi) => {
                let p = Complex64::from_polar(1.0, *phi);
                CMatrix::from_vec(2, 2, vec![p, c(0., 0.), c(0., 0.), p])
            }
            Gate::Swap => {
                let mut m = CMatrix::zeros(4, 4);
                m[(0, 0)] = c(1., 0.);
                m[(1, 2)] = c(1., 0.);
                m[(2, 1)] = c(1., 0.);
                m[(3, 3)] = c(1., 0.);
                m
            }
            Gate::Unitary(m) => m.clone(),
        }
    }

    /// The adjoint (inverse) gate.
    pub fn adjoint(&self) -> Gate {
        match self {
            Gate::I | Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::Swap => self.clone(),
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(p) => Gate::Phase(-p),
            Gate::GlobalPhase(p) => Gate::GlobalPhase(-p),
            Gate::Unitary(m) => Gate::Unitary(m.adjoint()),
        }
    }

    /// Short mnemonic used in circuit printouts and resource tables.
    pub fn name(&self) -> &'static str {
        match self {
            Gate::I => "i",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::H => "h",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::GlobalPhase(_) => "gphase",
            Gate::Swap => "swap",
            Gate::Unitary(_) => "unitary",
        }
    }

    /// True for gates in the Clifford group (no T gates needed).
    pub fn is_clifford(&self) -> bool {
        matches!(
            self,
            Gate::I | Gate::X | Gate::Y | Gate::Z | Gate::H | Gate::S | Gate::Sdg | Gate::Swap
        )
    }

    /// True for gates that carry a continuous parameter (and therefore need
    /// Solovay-Kitaev-style synthesis on fault-tolerant hardware).
    pub fn is_rotation(&self) -> bool {
        matches!(
            self,
            Gate::Rx(_) | Gate::Ry(_) | Gate::Rz(_) | Gate::Phase(_) | Gate::GlobalPhase(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_named_gates_are_unitary() {
        let gates = vec![
            Gate::I,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::H,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Rx(0.7),
            Gate::Ry(-1.3),
            Gate::Rz(2.1),
            Gate::Phase(0.4),
            Gate::GlobalPhase(1.1),
            Gate::Swap,
        ];
        for g in gates {
            assert!(g.matrix().is_unitary(1e-12), "{} is not unitary", g.name());
        }
    }

    #[test]
    fn adjoint_matrices_are_inverses() {
        let gates = vec![
            Gate::S,
            Gate::T,
            Gate::Rx(0.3),
            Gate::Ry(1.0),
            Gate::Rz(-0.8),
            Gate::Phase(2.0),
            Gate::H,
            Gate::Swap,
        ];
        for g in gates {
            let m = g.matrix();
            let madj = g.adjoint().matrix();
            let prod = m.matmul(&madj);
            assert!(
                prod.max_abs_diff(&CMatrix::identity(m.nrows())) < 1e-12,
                "{} adjoint failed",
                g.name()
            );
        }
    }

    #[test]
    fn pauli_algebra() {
        let x = Gate::X.matrix();
        let y = Gate::Y.matrix();
        let z = Gate::Z.matrix();
        // XY = iZ.
        let xy = x.matmul(&y);
        let mut iz = z.clone();
        iz.scale(Complex64::new(0.0, 1.0));
        assert!(xy.max_abs_diff(&iz) < 1e-14);
        // HZH = X.
        let h = Gate::H.matrix();
        let hzh = h.matmul(&z).matmul(&h);
        assert!(hzh.max_abs_diff(&x) < 1e-14);
    }

    #[test]
    fn t_squared_is_s() {
        let t = Gate::T.matrix();
        let s = Gate::S.matrix();
        assert!(t.matmul(&t).max_abs_diff(&s) < 1e-14);
    }

    #[test]
    fn rotation_composition() {
        // Rz(a) Rz(b) = Rz(a + b).
        let a = 0.31;
        let b = 1.17;
        let lhs = Gate::Rz(a).matrix().matmul(&Gate::Rz(b).matrix());
        let rhs = Gate::Rz(a + b).matrix();
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
        // Ry(2π) = -I.
        let full_turn = Gate::Ry(2.0 * std::f64::consts::PI).matrix();
        let mut minus_i = CMatrix::identity(2);
        minus_i.scale(Complex64::new(-1.0, 0.0));
        assert!(full_turn.max_abs_diff(&minus_i) < 1e-12);
    }

    #[test]
    fn phase_vs_rz_differ_by_global_phase() {
        // P(φ) = e^{iφ/2} Rz(φ).
        let phi = 0.9;
        let p = Gate::Phase(phi).matrix();
        let mut rz = Gate::Rz(phi).matrix();
        rz.scale(Complex64::from_polar(1.0, phi / 2.0));
        assert!(p.max_abs_diff(&rz) < 1e-12);
    }

    #[test]
    fn arity_and_classification() {
        assert_eq!(Gate::X.arity(), 1);
        assert_eq!(Gate::Swap.arity(), 2);
        assert_eq!(Gate::Unitary(CMatrix::identity(8)).arity(), 3);
        assert!(Gate::H.is_clifford());
        assert!(!Gate::T.is_clifford());
        assert!(Gate::Rz(0.1).is_rotation());
        assert!(!Gate::X.is_rotation());
    }
}
