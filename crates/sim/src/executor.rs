//! The compile-once execution engine.
//!
//! Every layer above the simulator (block-encodings, the QSVT inverter, the
//! hybrid refinement loop) has the paper's access pattern: **one circuit,
//! many executions** — the matrix is fixed, so its block-encoding and QSVT
//! circuit never change, while right-hand sides and residuals arrive by the
//! dozen.  [`QuantumExecutor`] owns that pattern: it compiles a circuit
//! exactly once into its [`CompiledCircuit`] form and then exposes
//!
//! * [`QuantumExecutor::run`] / [`run_in_place`](QuantumExecutor::run_in_place)
//!   — apply the compiled circuit to one register (per-gate thread fan-out as
//!   usual, see [`crate::kernels`]);
//! * [`QuantumExecutor::run_batch`] — apply the compiled circuit to **many**
//!   registers, fanning out across the *batch* with one register per worker
//!   thread.  Coarse-grained batch parallelism scales on multi-core machines
//!   where per-gate fan-out cannot (a gate application is memory-bound and
//!   synchronises at every gate; independent registers never synchronise).
//!   Inside a batch fan-out the per-gate parallelism is disabled
//!   ([`CompiledCircuit::apply_sequential`]), so no nested thread spawning
//!   occurs and results stay bit-identical to a sequential loop of
//!   [`run`](QuantumExecutor::run) at any thread count.
//!
//! ## Optimization
//!
//! Construction runs the circuit-optimizer pass of [`crate::fuse`] by
//! default ([`OptLevel::Fuse`]): adjacent gates fuse into denser sweeps and
//! diagonal chains merge before compilation, so every subsequent execution
//! pays fewer kernel dispatches for the same unitary (to ≲ 1e-13 roundoff).
//! [`OptLevel::None`] compiles the operation list exactly as written — the
//! equivalence oracle and perf baseline, in the same spirit as
//! `kernels::reference`.  Pick `Fuse` whenever a circuit is executed more
//! than a handful of times (the optimizer costs less than one execution on
//! realistic circuits); pick `None` when you need the compiled form to
//! mirror the gate list one-to-one (oracle tests, per-gate instrumentation).
//!
//! ## Caching contract
//!
//! Construction compiles (and optimizes); execution never does.  The
//! thread-local [`crate::kernels::circuit_compile_count`] makes the contract
//! testable: wrap any `run`/`run_batch` region with it and the count must
//! not move.

use crate::circuit::Circuit;
use crate::fault::{lock_injector, FaultError, SharedFaultInjector};
use crate::fuse::{CircuitStats, CostModel, FusionOptions};
use crate::gate::Gate;
use crate::kernels::{CompiledCircuit, PARALLEL_WORK_THRESHOLD};
use crate::shard::{ShardedCircuit, ShardedState};
use crate::state::StateVector;
use qls_cache::{machine_fingerprint, CachePolicy, CacheStore, Fingerprint, FingerprintBuilder};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Cache kind for fused-circuit artifacts (see [`qls_cache`]).
const FUSED_CACHE_KIND: &str = "fused-circuits";
/// Bump whenever the fusion pass, the [`CachedFusion`] wire shape, or the
/// fingerprint recipe below changes meaning — old entries become misses.
const FUSED_CACHE_VERSION: u32 = 1;

/// The on-disk payload of one fused-circuit cache entry: the rewritten
/// operation list plus the before/after report.  Compilation itself
/// (matrix flattening, control masks, stride tables) is cheap and
/// machine-width-dependent, so a hit replays the *fusion decision* and
/// recompiles — [`crate::kernels::circuit_compile_count`] still ticks once
/// per construction, preserving the compile-once contract tests, while
/// [`crate::fuse::fusion_pass_count`] does not.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CachedFusion {
    fused: Circuit,
    stats: CircuitStats,
}

/// Content fingerprint of a fusion job: every input the optimizer's output
/// depends on.  Gate params and `Unitary` entries are hashed by f64 bit
/// pattern; the machine fingerprint is included because the measured cost
/// model makes fusion decisions timing-dependent — an artifact cache copied
/// to an unlike machine misses instead of importing foreign break-evens.
fn fused_circuit_fingerprint(
    circuit: &Circuit,
    num_qubits: usize,
    opts: &FusionOptions,
) -> Fingerprint {
    let mut b = FingerprintBuilder::new(FUSED_CACHE_KIND);
    b.write_u64(machine_fingerprint());
    b.write_usize(num_qubits);
    b.write_usize(circuit.num_qubits());
    b.write_usize(circuit.len());
    // QSVT circuits repeat the same block-encoding unitary degree-many
    // times; hashing every copy would make the fingerprint itself cost more
    // than a warm cache replay saves.  Each *distinct* matrix is hashed
    // once; repeats hash as a back-reference to its first occurrence
    // (an equality check against the distinct set is a memcmp, several
    // times cheaper than streaming the matrix through the hash).  The
    // encoding stays injective: the op stream determines the distinct list
    // and every op's matrix content.
    let mut distinct: Vec<&crate::cmatrix::CMatrix> = Vec::new();
    for op in circuit.operations() {
        b.write_str(op.gate.name());
        match &op.gate {
            Gate::Rx(t) | Gate::Ry(t) | Gate::Rz(t) | Gate::Phase(t) | Gate::GlobalPhase(t) => {
                b.write_f64(*t);
            }
            Gate::Unitary(m) => match distinct.iter().position(|d| *d == m) {
                Some(i) => {
                    b.write_u64(u64::MAX);
                    b.write_usize(i);
                }
                None => {
                    b.write_usize(m.nrows());
                    for i in 0..m.nrows() {
                        for j in 0..m.ncols() {
                            let z = m[(i, j)];
                            b.write_f64(z.re);
                            b.write_f64(z.im);
                        }
                    }
                    distinct.push(m);
                }
            },
            _ => {}
        }
        b.write_usize_slice(&op.targets);
        b.write_usize_slice(&op.controls);
    }
    b.write_usize(opts.max_fused_qubits);
    b.write_usize(opts.max_diagonal_qubits);
    b.write_usize(opts.lookback);
    b.write_usize(opts.op_overhead_cost);
    b.write_u64(match opts.cost_model {
        CostModel::Static => 0,
        CostModel::Measured => 1,
    });
    match opts.shard_boundary {
        None => b.write_u64(0),
        Some(m) => b.write_u64(1).write_usize(m),
    };
    b.finish()
}

/// How aggressively the executor rewrites a circuit before compiling it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// Compile the operation list as-is (one [`CompiledOp`] per gate).  The
    /// unoptimized oracle/baseline path.
    ///
    /// [`CompiledOp`]: crate::kernels::CompiledOp
    None,
    /// Run gate fusion + diagonal merging ([`crate::fuse`]) with the
    /// measured cost model ([`FusionOptions::measured`]) before compiling.
    /// The default.
    #[default]
    Fuse,
}

/// How the executor lays out the register at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One contiguous `2^n`-amplitude register (the default, and the
    /// bit-identity oracle for the sharded mode).
    #[default]
    Flat,
    /// The register split into `shards` worker-owned chunks
    /// ([`crate::shard`]): low-support ops run embarrassingly parallel per
    /// chunk with the same compiled kernels, high-qubit ops execute via
    /// batched pairwise shard exchanges.  `shards` must be a power of two at
    /// most `2^n`.  Under [`OptLevel::Fuse`] the optimizer is armed with the
    /// shard boundary
    /// ([`FusionOptions::with_shard_boundary`](crate::fuse::FusionOptions::with_shard_boundary))
    /// so fusion minimizes exchange rounds.
    Sharded {
        /// Number of worker-owned chunks, `2^k`.
        shards: usize,
    },
}

/// A circuit compiled once and executable many times, single or batched.
#[derive(Debug, Clone)]
pub struct QuantumExecutor {
    compiled: CompiledCircuit,
    /// Sharded execution plan, compiled from the *same* (fused) operation
    /// list as `compiled` — `Some` iff the mode is [`ExecMode::Sharded`].
    /// The flat form stays the bit-identity oracle.
    sharded: Option<ShardedCircuit>,
    opt_level: OptLevel,
    /// Before/after fusion report (`None` for [`OptLevel::None`] and for
    /// [`QuantumExecutor::from_compiled`]).
    stats: Option<CircuitStats>,
    /// Fault injector consulted by the *checked* execution paths only
    /// ([`QuantumExecutor::run_in_place_checked`],
    /// [`QuantumExecutor::run_batch_checked`]); `None` (the default) keeps
    /// every path fault-free and bit-identical to the pre-fault engine.
    fault: Option<SharedFaultInjector>,
}

impl QuantumExecutor {
    /// Optimize (default [`OptLevel::Fuse`]) and compile `circuit` once for
    /// its own register width.
    pub fn new(circuit: &Circuit) -> Self {
        Self::with_options(circuit, OptLevel::default())
    }

    /// Compile `circuit` once at an explicit [`OptLevel`].
    pub fn with_options(circuit: &Circuit, opt_level: OptLevel) -> Self {
        Self::for_register_with_options(circuit, circuit.num_qubits(), opt_level)
    }

    /// Compile `circuit` once for a register of `num_qubits` (≥ the circuit's
    /// width), so the compiled form can run on a larger register directly.
    pub fn for_register(circuit: &Circuit, num_qubits: usize) -> Self {
        Self::for_register_with_options(circuit, num_qubits, OptLevel::default())
    }

    /// [`QuantumExecutor::for_register`] at an explicit [`OptLevel`].
    pub fn for_register_with_options(
        circuit: &Circuit,
        num_qubits: usize,
        opt_level: OptLevel,
    ) -> Self {
        Self::for_register_with_exec_mode(circuit, num_qubits, opt_level, ExecMode::Flat)
    }

    /// Compile `circuit` once at an explicit [`OptLevel`] and [`ExecMode`].
    pub fn with_exec_mode(circuit: &Circuit, opt_level: OptLevel, mode: ExecMode) -> Self {
        Self::for_register_with_exec_mode(circuit, circuit.num_qubits(), opt_level, mode)
    }

    /// [`QuantumExecutor::for_register_with_exec_mode`] with the artifact
    /// cache disabled — ad-hoc executors over arbitrary circuits should not
    /// populate the user's cache directory by default.  Layers with stable,
    /// expensive-to-fuse circuits (the QSVT solver stack) opt in through
    /// [`QuantumExecutor::for_register_with_config`].
    pub fn for_register_with_exec_mode(
        circuit: &Circuit,
        num_qubits: usize,
        opt_level: OptLevel,
        mode: ExecMode,
    ) -> Self {
        Self::for_register_with_config(circuit, num_qubits, opt_level, mode, CachePolicy::Disabled)
    }

    /// [`QuantumExecutor::for_register_with_config`] at the circuit's own
    /// register width.
    pub fn with_config(
        circuit: &Circuit,
        opt_level: OptLevel,
        mode: ExecMode,
        cache: CachePolicy,
    ) -> Self {
        Self::for_register_with_config(circuit, circuit.num_qubits(), opt_level, mode, cache)
    }

    /// The general constructor: explicit register width, [`OptLevel`],
    /// [`ExecMode`], and [`CachePolicy`].  In sharded mode the fused (or raw)
    /// operation list is compiled twice — the flat oracle plus the sharded
    /// plan — still at construction only; runs never recompile.
    ///
    /// With the cache enabled, the [`OptLevel::Fuse`] path consults the
    /// persistent `fused-circuits` store before running the optimizer: a hit
    /// replays the previously fused operation list (zero
    /// [`crate::fuse::fusion_pass_count`] ticks, and — because the measured
    /// cost model's calibration table is also persisted — zero timing runs),
    /// a miss fuses as usual and stores the result.  Either way the compiled
    /// form is bit-identical: the cache stores the fusion *decision*, not
    /// floats produced by it.
    pub fn for_register_with_config(
        circuit: &Circuit,
        num_qubits: usize,
        opt_level: OptLevel,
        mode: ExecMode,
        cache: CachePolicy,
    ) -> Self {
        let shards = match mode {
            ExecMode::Flat => None,
            ExecMode::Sharded { shards } => Some(shards),
        };
        match opt_level {
            OptLevel::None => QuantumExecutor {
                compiled: CompiledCircuit::compile_for(circuit, num_qubits),
                sharded: shards.map(|s| ShardedCircuit::compile(circuit, num_qubits, s)),
                opt_level,
                stats: None,
                fault: None,
            },
            OptLevel::Fuse => {
                let mut opts = FusionOptions::measured();
                if let Some(s) = shards {
                    // Arm the low-support preference with the shard boundary
                    // m = n − k so fusion prices exchange traffic honestly.
                    let k = s.trailing_zeros() as usize;
                    opts = opts.with_shard_boundary(num_qubits.saturating_sub(k));
                }
                let store = match cache {
                    CachePolicy::Enabled => CacheStore::open(),
                    CachePolicy::Disabled => None,
                };
                let key = store
                    .as_ref()
                    .map(|_| fused_circuit_fingerprint(circuit, num_qubits, &opts));
                if let (Some(store), Some(key)) = (&store, key) {
                    if let Some(cf) =
                        store.load::<CachedFusion>(FUSED_CACHE_KIND, FUSED_CACHE_VERSION, key)
                    {
                        // Belt and braces on top of the deserializer's own
                        // invariant checks: a replayed circuit must still fit
                        // the register (key collisions are negligible, but a
                        // panic from stale data is never acceptable).
                        if cf.fused.num_qubits() <= num_qubits {
                            return QuantumExecutor {
                                compiled: CompiledCircuit::compile_for(&cf.fused, num_qubits),
                                sharded: shards
                                    .map(|s| ShardedCircuit::compile(&cf.fused, num_qubits, s)),
                                opt_level,
                                stats: Some(cf.stats),
                                fault: None,
                            };
                        }
                    }
                }
                let (compiled, fused, stats) =
                    CompiledCircuit::optimized_with_fused(circuit, num_qubits, &opts);
                if let (Some(store), Some(key)) = (&store, key) {
                    store.store(
                        FUSED_CACHE_KIND,
                        FUSED_CACHE_VERSION,
                        key,
                        &CachedFusion {
                            fused: fused.clone(),
                            stats,
                        },
                    );
                }
                QuantumExecutor {
                    compiled,
                    sharded: shards.map(|s| ShardedCircuit::compile(&fused, num_qubits, s)),
                    opt_level,
                    stats: Some(stats),
                    fault: None,
                }
            }
        }
    }

    /// Wrap an already-compiled circuit.
    pub fn from_compiled(compiled: CompiledCircuit) -> Self {
        QuantumExecutor {
            compiled,
            sharded: None,
            opt_level: OptLevel::None,
            stats: None,
            fault: None,
        }
    }

    /// Attach a fault injector.  Only the checked execution paths consult it
    /// ([`QuantumExecutor::run_in_place_checked`],
    /// [`QuantumExecutor::run_batch_checked`]); the plain `run*` family stays
    /// fault-free so it keeps serving as the equivalence oracle.
    pub fn attach_fault_injector(&mut self, injector: SharedFaultInjector) {
        self.fault = Some(injector);
    }

    /// Detach and return the fault injector, restoring ideal execution.
    pub fn detach_fault_injector(&mut self) -> Option<SharedFaultInjector> {
        self.fault.take()
    }

    /// The attached fault injector, if any.
    pub fn fault_injector(&self) -> Option<&SharedFaultInjector> {
        self.fault.as_ref()
    }

    /// The optimization level the engine was built with.
    pub fn opt_level(&self) -> OptLevel {
        self.opt_level
    }

    /// The before/after fusion report (`Some` iff the optimizer ran).
    pub fn stats(&self) -> Option<&CircuitStats> {
        self.stats.as_ref()
    }

    /// Register width the engine was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.compiled.num_qubits()
    }

    /// Number of compiled operations.
    pub fn len(&self) -> usize {
        self.compiled.len()
    }

    /// True when the compiled circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.compiled.is_empty()
    }

    /// The compiled artefact itself — in sharded mode this flat form is the
    /// bit-identity oracle for the sharded plan.
    pub fn compiled(&self) -> &CompiledCircuit {
        &self.compiled
    }

    /// The execution mode the engine was built with.
    pub fn exec_mode(&self) -> ExecMode {
        match &self.sharded {
            None => ExecMode::Flat,
            Some(plan) => ExecMode::Sharded {
                shards: plan.num_shards(),
            },
        }
    }

    /// The sharded execution plan (`Some` iff the mode is
    /// [`ExecMode::Sharded`]) — exposes exchange-round and per-step-kind op
    /// counts.
    pub fn sharding(&self) -> Option<&ShardedCircuit> {
        self.sharded.as_ref()
    }

    /// The ideal (fault-free) application at the engine's [`ExecMode`]:
    /// flat compiled sweeps, or shard/apply-plan/gather.  Both paths are
    /// bit-identical for the same compiled operation list.
    fn apply_ideal(&self, state: &mut StateVector) {
        match &self.sharded {
            None => self.compiled.apply(state),
            Some(plan) => {
                let mut sharded = ShardedState::from_state(state, plan.num_shards());
                plan.apply(&mut sharded);
                state.set_amplitudes(sharded.into_state().into_amplitudes());
            }
        }
    }

    /// Apply the compiled circuit to `state` in place (per-gate fan-out above
    /// the usual work threshold; in sharded mode the register is split,
    /// run through the exchange plan, and gathered back).
    pub fn run_in_place(&self, state: &mut StateVector) {
        self.apply_ideal(state);
    }

    /// Apply the sharded plan to an already-sharded register in place,
    /// avoiding the split/gather of [`QuantumExecutor::run_in_place`].
    /// Panics unless the engine was built with [`ExecMode::Sharded`].
    pub fn run_sharded_in_place(&self, state: &mut ShardedState) {
        self.sharded
            .as_ref()
            .expect("executor was not built with ExecMode::Sharded")
            .apply(state);
    }

    /// Apply the compiled circuit to a copy of `initial` and return the
    /// result.
    pub fn run(&self, initial: &StateVector) -> StateVector {
        let mut state = initial.clone();
        self.run_in_place(&mut state);
        state
    }

    /// Run the compiled circuit on `|0…0⟩`.
    pub fn run_zero(&self) -> StateVector {
        let mut state = StateVector::zero_state(self.num_qubits());
        self.run_in_place(&mut state);
        state
    }

    /// Apply the compiled circuit to every register of `states` in place,
    /// fanning out **across the batch** (one register per worker) when the
    /// total work justifies threads.  Results are bit-identical to
    /// `for s in states { executor.run_in_place(s) }` at any thread count.
    pub fn run_batch(&self, states: &mut [StateVector]) {
        if self.sharded.is_some() {
            // Each sharded run already fans out across shards; a nested
            // batch fan-out would oversubscribe the workers.
            for state in states {
                self.apply_ideal(state);
            }
            return;
        }
        if let Some(first) = states.first() {
            let per_state = self.compiled.work_estimate(first.amplitudes().len());
            let batch_work = per_state.saturating_mul(states.len());
            if states.len() >= 2
                && batch_work >= PARALLEL_WORK_THRESHOLD
                && rayon::current_num_threads() > 1
            {
                // Coarse grain: one register per worker, per-gate fan-out off
                // so worker threads never spawn nested workers.
                states
                    .par_iter_mut()
                    .for_each(|state| self.compiled.apply_sequential(state));
                return;
            }
        }
        for state in states {
            self.compiled.apply(state);
        }
    }

    /// [`QuantumExecutor::run_batch`] over owned initial states, returning the
    /// final states in order.
    pub fn run_batch_vec(&self, mut states: Vec<StateVector>) -> Vec<StateVector> {
        self.run_batch(&mut states);
        states
    }

    /// [`QuantumExecutor::run_in_place`] through the fault layer: apply the
    /// compiled circuit, then let the attached injector (if any) degrade the
    /// register or report a transient failure.  Without an injector this is
    /// exactly `run_in_place` — same kernels, same floats.
    pub fn run_in_place_checked(&self, state: &mut StateVector) -> Result<(), FaultError> {
        self.apply_ideal(state);
        if let Some(inj) = &self.fault {
            lock_injector(inj).apply_to_state(state)?;
        }
        Ok(())
    }

    /// [`QuantumExecutor::run_batch`] through the fault layer, with a
    /// per-register verdict so one injected failure cannot take down the
    /// whole batch.  With an injector attached the registers run
    /// sequentially in order — the injector's run counter and random stream
    /// must advance deterministically, which a thread fan-out cannot
    /// guarantee; without one, this defers to [`QuantumExecutor::run_batch`]
    /// (bit-identical, fully parallel).
    pub fn run_batch_checked(&self, states: &mut [StateVector]) -> Vec<Result<(), FaultError>> {
        match &self.fault {
            None => {
                self.run_batch(states);
                vec![Ok(()); states.len()]
            }
            Some(inj) => {
                let mut guard = lock_injector(inj);
                states
                    .iter_mut()
                    .map(|state| {
                        self.apply_ideal(state);
                        guard.apply_to_state(state)
                    })
                    .collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;
    use crate::kernels::circuit_compile_count;

    fn test_circuit(n: usize) -> Circuit {
        let mut circ = Circuit::new(n);
        circ.h(0);
        for q in 1..n {
            circ.cx(q - 1, q);
        }
        circ.ry(0, 0.31).rz(n - 1, -0.7).t(n / 2);
        circ.gate(Gate::Phase(0.4), &[1]);
        circ
    }

    fn max_diff(a: &StateVector, b: &StateVector) -> f64 {
        a.amplitudes()
            .iter()
            .zip(b.amplitudes())
            .map(|(x, y)| (x - y).norm())
            .fold(0.0, f64::max)
    }

    #[test]
    fn run_matches_apply_circuit() {
        let circ = test_circuit(5);
        // The default (fused) engine agrees to roundoff; the unoptimized
        // engine is the same float-for-float computation as apply_circuit.
        let exec = QuantumExecutor::new(&circ);
        let mut via_state = StateVector::zero_state(5);
        via_state.apply_circuit(&circ);
        assert!(max_diff(&exec.run_zero(), &via_state) < 1e-12);
        let raw = QuantumExecutor::with_options(&circ, OptLevel::None);
        assert_eq!(raw.run_zero().amplitudes(), via_state.amplitudes());
        assert_eq!(raw.opt_level(), OptLevel::None);
        assert!(raw.stats().is_none());
        assert_eq!(exec.opt_level(), OptLevel::Fuse);
        assert!(exec.stats().unwrap().fused_ops <= exec.stats().unwrap().raw_ops);
    }

    #[test]
    fn construction_compiles_once_and_runs_never_compile() {
        let circ = test_circuit(4);
        let before = circuit_compile_count();
        let exec = QuantumExecutor::new(&circ);
        assert_eq!(circuit_compile_count(), before + 1);
        let mut batch: Vec<StateVector> = (0..6).map(|i| StateVector::basis_state(4, i)).collect();
        let _ = exec.run_zero();
        let _ = exec.run(&batch[0]);
        exec.run_batch(&mut batch);
        assert_eq!(
            circuit_compile_count(),
            before + 1,
            "run/run_batch must not recompile"
        );
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let circ = test_circuit(6);
        let exec = QuantumExecutor::new(&circ);
        let initial: Vec<StateVector> =
            (0..8).map(|i| StateVector::basis_state(6, i * 3)).collect();
        let mut batch = initial.clone();
        exec.run_batch(&mut batch);
        for (b, init) in batch.iter().zip(&initial) {
            let single = exec.run(init);
            assert_eq!(b.amplitudes(), single.amplitudes());
        }
    }

    #[test]
    fn for_register_runs_on_larger_register() {
        let circ = test_circuit(3);
        let exec = QuantumExecutor::for_register(&circ, 5);
        assert_eq!(exec.num_qubits(), 5);
        let out = exec.run_zero();
        let mut direct = StateVector::zero_state(5);
        direct.apply_circuit(&circ);
        assert!(max_diff(&out, &direct) < 1e-12);
    }

    #[test]
    fn checked_paths_without_injector_match_the_plain_paths() {
        let circ = test_circuit(5);
        let exec = QuantumExecutor::new(&circ);
        assert!(exec.fault_injector().is_none());
        let mut checked = StateVector::zero_state(5);
        exec.run_in_place_checked(&mut checked).unwrap();
        assert_eq!(checked.amplitudes(), exec.run_zero().amplitudes());
        let mut batch: Vec<StateVector> = (0..4).map(|i| StateVector::basis_state(5, i)).collect();
        let plain = exec.run_batch_vec(batch.clone());
        let verdicts = exec.run_batch_checked(&mut batch);
        assert!(verdicts.iter().all(|v| v.is_ok()));
        for (c, p) in batch.iter().zip(&plain) {
            assert_eq!(c.amplitudes(), p.amplitudes());
        }
    }

    #[test]
    fn injected_transient_fails_only_its_own_register() {
        use crate::fault::{FaultInjector, FaultPlan, TransientKind};
        let circ = test_circuit(4);
        let mut exec = QuantumExecutor::new(&circ);
        exec.attach_fault_injector(FaultInjector::shared(
            FaultPlan::new(5).with_transient(1, TransientKind::InjectedError),
        ));
        let mut batch: Vec<StateVector> = (0..3).map(|i| StateVector::basis_state(4, i)).collect();
        let verdicts = exec.run_batch_checked(&mut batch);
        assert!(verdicts[0].is_ok());
        assert_eq!(
            verdicts[1],
            Err(FaultError::InjectedTransient { run_index: 1 })
        );
        assert!(verdicts[2].is_ok());
        // Registers 0 and 2 still hold the ideal result (no amplitude noise
        // in this plan).
        let ideal = exec.run(&StateVector::basis_state(4, 2));
        assert_eq!(batch[2].amplitudes(), ideal.amplitudes());
        let detached = exec.detach_fault_injector();
        assert!(detached.is_some());
        assert!(exec.fault_injector().is_none());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let exec = QuantumExecutor::new(&test_circuit(2));
        exec.run_batch(&mut []);
        assert!(!exec.is_empty());
        // On the tiny 2-qubit register the mask-densifying pass collapses
        // the whole circuit (cx included) into one dense 2-qubit unitary.
        assert_eq!(exec.len(), 1);
        let raw = QuantumExecutor::with_options(&test_circuit(2), OptLevel::None);
        assert_eq!(raw.len(), 1 + 1 + 3 + 1); // h + cx + ry/rz/t + phase
    }
}
