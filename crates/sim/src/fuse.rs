//! Circuit-optimizer pass: gate fusion and diagonal merging.
//!
//! The compiled kernels of [`crate::kernels`] make each *individual* gate as
//! cheap as it can be, but a circuit of `m` gates still performs `m` sweeps
//! over the `2^n`-amplitude register.  This module rewrites the operation
//! list *before* compilation so repeated executions pay fewer, denser sweeps:
//!
//! 1. **Dense fusion.**  Runs of adjacent gates whose combined *target*
//!    support stays within [`FusionOptions::max_fused_qubits`] qubits
//!    (default 3) are fused into one dense operation by multiplying their
//!    embedded matrices.  Fusion is always allowed — regardless of the cap —
//!    when one operation's targets are a subset of the other's, because the
//!    fused op is no larger than what the circuit already contained (this is
//!    what lets a deep QSVT sequence collapse into its block-encoding-sized
//!    product).
//! 2. **Diagonal merging.**  Operations that are diagonal in the
//!    computational basis (`Z`/`S`/`T`/`Rz`/`Phase`/`GlobalPhase`, their
//!    controlled forms, and any diagonal `Gate::Unitary`) multiply entrywise,
//!    so chains of them — even on *different* qubits and with *different*
//!    control sets — merge into a single diagonal of support up to
//!    [`FusionOptions::max_diagonal_qubits`].  A controlled diagonal is
//!    itself a diagonal, so mismatched control masks fold into the table.
//! 3. **Controlled fusion.**  Controlled operations fuse whenever their
//!    control sets match: both act as the identity outside the
//!    control-satisfied subspace and compose inside it, so the fused op keeps
//!    the (cheaper) controlled kernel enumeration.
//! 4. **Cleanup.**  Identities (including fusion products that cancel to the
//!    identity, e.g. the `X … X` conjugation pairs of projector rotations)
//!    are dropped, and diagonal factors that do not depend on one of their
//!    qubits are pruned down to their true support.
//!
//! 3b. **Mask-densifying controlled fusion.**  Controlled operations with
//!    *different* control sets (and overlapping supports) can still fuse:
//!    each is embedded as an uncontrolled block-diagonal matrix over
//!    `controls ∪ targets` (identity wherever its controls are unsatisfied)
//!    and the embeddings are multiplied.  The fused op trades the cheap
//!    control-subspace enumeration for a dense sweep, so this fusion lives
//!    or dies by the cost gate: it fires on small, dispatch-dominated
//!    registers and is rejected where the densified sweep would cost more.
//!
//! The pass is a single greedy sweep: each incoming operation looks backwards
//! through the last [`FusionOptions::lookback`] emitted segments, hopping
//! over segments it commutes with (disjoint support, or both diagonal), and
//! fuses into the first compatible one.  Each candidate fusion is priced on
//! this circuit's register before it is accepted: a fusion that would *raise*
//! the estimated sweep cost by more than the saved per-op overhead
//! ([`FusionOptions::op_overhead_cost`]) is rejected, so cheap structured
//! sweeps survive on large registers where arithmetic dominates dispatch,
//! while small solver registers (dispatch-dominated) and cost-neutral fusions
//! (nested or equal targets — the QSVT collapse) fuse at any size.  When a
//! *pairwise* fusion is cost-rejected, a **two-op lookahead** composes the
//! candidate with the preceding segment as well: conjugation patterns like
//! `X · D · X` collapse to a single cheap diagonal even though the greedy
//! `X · D` intermediate is a dense sweep the gate would refuse.
//!
//! Sweep pricing follows the selected [`CostModel`]: the deterministic
//! [`CostModel::Static`] table (the documented complex-multiply-equivalent
//! constants, and the default for explicit [`FusionOptions`]), or
//! [`CostModel::Measured`], which times one representative sweep per kernel
//! class on this machine at first use — cached thread-locally per register
//! size, clamped to [0.25, 4]× the static units — so the gate's break-even
//! points track what the SIMD kernels actually cost here.
//! [`CompiledCircuit::optimized`](crate::kernels::CompiledCircuit::optimized)
//! and [`OptLevel::Fuse`](crate::executor::OptLevel) use the measured model
//! ([`FusionOptions::measured`]).
//! Everything is plain matrix algebra on supports of at most a handful of
//! qubits, *independent of the register size*: the pass costs the equivalent
//! of a few dozen executions at worst (deep circuits collapsing into dense
//! products, e.g. the degree-117 QSVT sequence), repaid across the
//! many-execution workloads the compile-once engines exist for — and far
//! less than one execution on large registers, where it mostly declines to
//! fuse.
//!
//! Use [`optimize_circuit`] directly, or (more commonly)
//! [`CompiledCircuit::optimized`](crate::kernels::CompiledCircuit::optimized)
//! / [`OptLevel::Fuse`](crate::executor::OptLevel) on
//! [`QuantumExecutor`](crate::executor::QuantumExecutor), which also report
//! the before/after [`CircuitStats`].  The unoptimized compile path is
//! retained as the equivalence oracle (`OptLevel::None`, mirroring
//! `kernels::reference`): optimized execution agrees with it to 1e-12 on the
//! property tests in `crates/sim/tests/fusion_equivalence.rs`.

use crate::circuit::{Circuit, Operation};
use crate::cmatrix::CMatrix;
use crate::gate::Gate;
use num_complex::Complex64;
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;

const ZERO: Complex64 = Complex64::new(0.0, 0.0);
const ONE: Complex64 = Complex64::new(1.0, 0.0);

/// How the fusion cost gate prices candidate sweeps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CostModel {
    /// The fixed per-kernel-class unit table (complex-multiply
    /// equivalents).  Deterministic — the same circuit always fuses the
    /// same way — and the default for explicitly constructed
    /// [`FusionOptions`], so tests and reproducible pipelines are not at
    /// the mercy of machine noise.
    #[default]
    Static,
    /// Units measured on this machine: at first use for a register size,
    /// one representative sweep per kernel class is timed
    /// (`CompiledOp::apply_sequential` on a capped-size buffer) and
    /// normalized so a single-target diagonal multiply is 1 unit.  Results
    /// are cached thread-locally per register size and clamped to
    /// [0.25, 4]× the static units, so a noisy timing can shift break-even
    /// points but never push the gate into pathological territory.
    Measured,
}

/// Tuning knobs of the fusion pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionOptions {
    /// Combined-target cap `K` for dense fusion: two dense ops fuse only when
    /// the union of their targets has at most this many qubits (cost of the
    /// fused generic kernel grows as `4^K` per block, so small caps win).
    /// Ops whose targets nest (subset) always fuse, whatever the cap.
    pub max_fused_qubits: usize,
    /// Support cap for merged diagonals.  A diagonal sweep costs one multiply
    /// per amplitude regardless of support, so this can sit well above
    /// `max_fused_qubits`; it only bounds the `2^k` table size.
    pub max_diagonal_qubits: usize,
    /// How many already-emitted segments an incoming op may scan backwards
    /// (hopping over commuting segments) to find a fusion partner.
    pub lookback: usize,
    /// Fixed cost of one operation application, in complex-multiply
    /// equivalents (dispatch, bounds checks, loop setup, and one more full
    /// pass over the memory-resident state).  A fusion is accepted only when
    /// `sweep_cost(fused) ≤ sweep_cost(a) + sweep_cost(b) + op_overhead_cost`
    /// on this circuit's register, so cheap structured sweeps (X, SWAP,
    /// phase, single-qubit pairs) are *not* densified into `4^k`-multiply
    /// generic blocks on registers large enough that the extra arithmetic
    /// outweighs the saved dispatch.  Nested-target and equal-target fusions
    /// never increase the sweep cost, so they pass at any register size.
    pub op_overhead_cost: usize,
    /// How candidate fusions are priced (see [`CostModel`]).
    pub cost_model: CostModel,
    /// The shard boundary `m` of the sharded execution scheme
    /// ([`crate::shard`]): qubits `< m` are shard-local, qubits `≥ m` cost a
    /// pairwise shard exchange per op that touches them.  `Some(m)` adds an
    /// exchange-movement term to every priced sweep — per exchanged qubit,
    /// a fixed round latency (the `α` of an `α + β·n` transfer model) plus
    /// `CostUnits::exchange` per amplitude; ops whose support cannot be
    /// served by pairwise exchanges at all are charged the full flat gather
    /// — and lets two exchange-bearing ops fuse beyond
    /// [`FusionOptions::max_fused_qubits`] so the gate can judge the trade.
    /// The optimizer then actively *prefers low-qubit support*: merging two
    /// high-qubit ops visibly retires a whole exchange round.  `None` (the
    /// default) prices pure sweep arithmetic — flat execution is unaffected
    /// by the sharding preference.
    pub shard_boundary: Option<usize>,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions {
            max_fused_qubits: 3,
            max_diagonal_qubits: 6,
            lookback: 16,
            op_overhead_cost: 512,
            cost_model: CostModel::Static,
            shard_boundary: None,
        }
    }
}

impl FusionOptions {
    /// The default options with the [`CostModel::Measured`] cost gate —
    /// what
    /// [`CompiledCircuit::optimized`](crate::kernels::CompiledCircuit::optimized)
    /// and [`OptLevel::Fuse`](crate::executor::OptLevel) use.
    pub fn measured() -> Self {
        FusionOptions {
            cost_model: CostModel::Measured,
            ..Default::default()
        }
    }

    /// These options with the low-support sharding preference armed at shard
    /// boundary `m` (see [`FusionOptions::shard_boundary`]).
    pub fn with_shard_boundary(self, boundary: usize) -> Self {
        FusionOptions {
            shard_boundary: Some(boundary),
            ..self
        }
    }
}

/// Resolved per-kernel-class unit costs for the fusion cost gate, in
/// complex-multiply equivalents: per visited amplitude for the diagonal
/// classes, per pair for the permutation/single-qubit classes, per
/// `2^k`-block for the generic classes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct CostUnits {
    /// Phase-shift-class diagonal (unit leading entry, one target).
    phase: f64,
    /// Single-target diagonal.
    diag1: f64,
    /// Multi-target table diagonal (`DiagonalK`), which pays a bit-gather
    /// on top of the multiply.
    diagk: f64,
    /// X/SWAP permutation pair (no arithmetic, pure data movement).
    perm: f64,
    /// Dense single-qubit pair update (4 multiplies).
    single: f64,
    /// Generic dense block, `k = 2` (16 multiplies + gather/scatter).
    generic2: f64,
    /// Generic dense block, `k = 3` (64 multiplies + gather/scatter).
    generic3: f64,
    /// Per-amplitude cost of one round-trip pairwise shard exchange (swap
    /// halves out, swap back) for one high qubit — pure data movement, twice
    /// the one-way permutation traffic.  Only charged when
    /// [`FusionOptions::shard_boundary`] is set.
    exchange: f64,
}

/// Fixed synchronization latency charged per exchanged qubit on top of the
/// per-amplitude exchange traffic — the `α` in the classic `α + β·n`
/// distributed transfer model.  A pairwise exchange round costs a barrier
/// and a partner rendezvous regardless of how little data moves, so at
/// small register widths (where `β·n` is noise against compute deltas) this
/// term is what actually steers the cost gate toward merging high-support
/// ops and eliminating rounds; at large widths the `4^k` dense-compute
/// growth dominates and keeps fusion from over-densifying.
const EXCHANGE_ROUND_OVERHEAD: f64 = 8192.0;

/// Dense-fusion target cap used in place of
/// [`FusionOptions::max_fused_qubits`] when the sharding preference is
/// armed and *both* candidate ops touch high qubits: merging two
/// exchange-bearing ops can retire a whole round, so the candidate is
/// priced by the cost gate instead of being rejected on width alone.  Hard
/// bound 6 keeps the materialized `2^k × 2^k` tables and their embedding
/// matmuls trivially small.
const MAX_EXCHANGE_FUSED_QUBITS: usize = 6;

/// The documented static table (`CostModel::Static`), matching the kernel
/// dispatch commentary in [`crate::kernels`].
const STATIC_UNITS: CostUnits = CostUnits {
    phase: 1.0,
    diag1: 1.0,
    diagk: 2.0,
    perm: 1.0,
    single: 4.0,
    generic2: 32.0,
    generic3: 128.0,
    exchange: 2.0,
};

impl CostUnits {
    /// Per-block unit of the generic kernel on `k ≥ 2` targets: measured
    /// for `k ∈ {2, 3}` (the sizes dense fusion actually produces under the
    /// default cap), extrapolated by the 4×-per-qubit multiply growth above.
    fn generic(&self, k: usize) -> f64 {
        match k {
            0 | 1 => self.single,
            2 => self.generic2,
            3 => self.generic3,
            _ => self.generic3 * 4f64.powi(k as i32 - 3),
        }
    }
}

thread_local! {
    /// Measured [`CostUnits`] per register size (see [`CostModel::Measured`]).
    static MEASURED_UNITS: RefCell<HashMap<usize, CostUnits>> = RefCell::new(HashMap::new());
    /// Calibration-table fills by this thread, for cache-contract tests.
    static CALIBRATIONS: Cell<usize> = const { Cell::new(0) };
    /// Fusion passes run by this thread, for cache-contract tests.
    static FUSION_PASSES: Cell<usize> = const { Cell::new(0) };
}

/// Number of fusion-cost calibration-table fills so far by the calling
/// thread — at most one per distinct register size under
/// [`CostModel::Measured`], zero under [`CostModel::Static`].  A fill is
/// either a timing run ([`calibrate`]) or a load from the persistent
/// artifact cache (`qls-cache`, kind `fusion-calibration`); either way the
/// thread-local table is primed and later sweeps pay nothing.  Mirrors
/// [`crate::kernels::circuit_compile_count`]: read it around a code region
/// to verify the calibration cache is doing its job.
pub fn calibration_count() -> usize {
    CALIBRATIONS.with(|c| c.get())
}

/// Number of fusion passes ([`optimize_circuit`] / [`optimize_circuit_for`])
/// run so far by the calling thread.  The fused-circuit artifact cache
/// serves warm constructions without a pass, so wrapping a warm-build
/// region with this counter asserts "zero fusion passes" directly.
pub fn fusion_pass_count() -> usize {
    FUSION_PASSES.with(|c| c.get())
}

/// Cache kind for persisted calibration tables (see [`calibration_count`]).
const CALIBRATION_CACHE_KIND: &str = "fusion-calibration";
/// Entry-format version of the calibration store.
const CALIBRATION_CACHE_VERSION: u32 = 1;

fn calibration_fingerprint(num_qubits: usize) -> qls_cache::Fingerprint {
    qls_cache::FingerprintBuilder::new(CALIBRATION_CACHE_KIND)
        .write_u64(qls_cache::machine_fingerprint())
        .write_usize(num_qubits)
        .finish()
}

fn resolve_units(model: CostModel, num_qubits: usize) -> CostUnits {
    match model {
        CostModel::Static => STATIC_UNITS,
        CostModel::Measured => MEASURED_UNITS.with(|cache| {
            *cache.borrow_mut().entry(num_qubits).or_insert_with(|| {
                CALIBRATIONS.with(|c| c.set(c.get() + 1));
                // First use for this register size: take the persisted table
                // for this machine if one exists (first-optimize timing runs
                // then amortize across processes), else measure and persist.
                // `load_quiet` keeps the hit/miss counters for the artifact
                // stores the solver layers assert on.
                let store = qls_cache::CacheStore::open();
                let key = calibration_fingerprint(num_qubits);
                store
                    .as_ref()
                    .and_then(|s| {
                        s.load_quiet(CALIBRATION_CACHE_KIND, CALIBRATION_CACHE_VERSION, key)
                    })
                    .unwrap_or_else(|| {
                        let units = calibrate(num_qubits);
                        if let Some(s) = &store {
                            s.store(
                                CALIBRATION_CACHE_KIND,
                                CALIBRATION_CACHE_VERSION,
                                key,
                                &units,
                            );
                        }
                        units
                    })
            })
        }),
    }
}

/// Time one representative sweep per kernel class and convert to cost
/// units (single-target diagonal multiply ≡ 1), clamped to the static
/// envelope.  Runs on a capped `2^clamp(n, 6, 12)` buffer: per-amplitude
/// kernel costs are insensitive to register size beyond cache-resident
/// scales, and the cap keeps first-use calibration well under a
/// millisecond.
fn calibrate(num_qubits: usize) -> CostUnits {
    use crate::kernels::CompiledOp;
    use std::time::Instant;
    let m = num_qubits.clamp(6, 12);
    let len = 1usize << m;
    let mut amps = vec![Complex64::new((len as f64).sqrt().recip(), 0.0); len];
    let mut scratch: Vec<Complex64> = Vec::new();
    let bit = m / 2; // mid-register target: representative stride pattern
    let mut time = |op: Operation| -> f64 {
        let cop = CompiledOp::compile(&op, m);
        let mut best = f64::INFINITY;
        // Best-of-4: the minimum is the least noise-contaminated estimate
        // of the sweep's intrinsic cost (first pass also warms the buffer).
        for _ in 0..4 {
            let t0 = Instant::now();
            cop.apply_sequential(&mut amps, &mut scratch);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    let h = Gate::H.matrix();
    let hh = h.kron(&h);
    let hhh = hh.kron(&h);
    let diag2 = CMatrix::from_fn(4, 4, |r, c| {
        if r == c {
            Complex64::from_polar(1.0, 0.3 * r as f64 + 0.1)
        } else {
            ZERO
        }
    });
    let t_phase = time(Operation::new(Gate::Phase(0.7), vec![bit], vec![]));
    let t_diag1 = time(Operation::new(Gate::Rz(0.4), vec![bit], vec![]));
    let t_diagk = time(Operation::new(Gate::Unitary(diag2), vec![0, bit], vec![]));
    let t_perm = time(Operation::new(Gate::X, vec![bit], vec![]));
    let t_single = time(Operation::new(Gate::H, vec![bit], vec![]));
    let t_g2 = time(Operation::new(Gate::Unitary(hh), vec![0, bit], vec![]));
    let t_g3 = time(Operation::new(
        Gate::Unitary(hhh),
        vec![0, bit, m - 1],
        vec![],
    ));
    // Exchange unit: time moving the whole buffer into a partner buffer and
    // back (what one pairwise shard exchange does per swapped high qubit,
    // amortized over both partners).
    let t_exchange = {
        let mut partner = amps.clone();
        let mut best = f64::INFINITY;
        for _ in 0..4 {
            let t0 = Instant::now();
            amps.swap_with_slice(&mut partner);
            partner.swap_with_slice(&mut amps);
            best = best.min(t0.elapsed().as_secs_f64());
        }
        best
    };
    // One unit = the measured cost of one single-target diagonal multiply
    // (the cheapest full sweep), so on a machine where every kernel hits
    // the static throughput ratios the measured table degenerates to the
    // static one.
    let unit = (t_diag1 / len as f64).max(f64::MIN_POSITIVE);
    let scale = |t: f64, count: usize, stat: f64| -> f64 {
        (t / count as f64 / unit).clamp(stat * 0.25, stat * 4.0)
    };
    CostUnits {
        phase: scale(t_phase, len / 2, STATIC_UNITS.phase),
        diag1: scale(t_diag1, len, STATIC_UNITS.diag1),
        diagk: scale(t_diagk, len, STATIC_UNITS.diagk),
        perm: scale(t_perm, len / 2, STATIC_UNITS.perm),
        single: scale(t_single, len / 2, STATIC_UNITS.single),
        generic2: scale(t_g2, len / 4, STATIC_UNITS.generic2),
        generic3: scale(t_g3, len / 8, STATIC_UNITS.generic3),
        exchange: scale(t_exchange, len, STATIC_UNITS.exchange),
    }
}

/// Before/after report of one optimization run.
///
/// "Sweep work" is the same quantity the kernels' parallel-fan-out decision
/// uses ([`crate::kernels::CompiledOp::work_estimate`]): free-index count ×
/// per-iteration cost, summed over the circuit — an estimate of the complex
/// multiplies one full application performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Operation count of the raw circuit.
    pub raw_ops: usize,
    /// Operation count after fusion.
    pub fused_ops: usize,
    /// Estimated complex multiplies per application of the raw circuit.
    pub raw_sweep_work: usize,
    /// Estimated complex multiplies per application after fusion.
    pub fused_sweep_work: usize,
}

impl CircuitStats {
    /// Raw-to-fused op-count ratio (≥ 1 in practice; the pass never splits).
    pub fn op_reduction(&self) -> f64 {
        ratio(self.raw_ops, self.fused_ops)
    }

    /// Raw-to-fused estimated-sweep-work ratio.
    pub fn work_reduction(&self) -> f64 {
        ratio(self.raw_sweep_work, self.fused_sweep_work)
    }
}

fn ratio(raw: usize, fused: usize) -> f64 {
    if fused == 0 {
        if raw == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        raw as f64 / fused as f64
    }
}

/// How a segment acts on its targets.
#[derive(Debug, Clone)]
enum Body {
    /// Dense `2^k × 2^k` matrix (row/column bit `t` ↔ `targets[t]`).
    Dense(CMatrix),
    /// Diagonal of a computational-basis-diagonal op (`2^k` entries).
    Diag(Vec<Complex64>),
}

/// One (possibly fused) operation in the optimizer's working list.
#[derive(Debug, Clone)]
struct Segment {
    /// Control qubits, sorted ascending.
    controls: Vec<usize>,
    /// Target qubits, sorted ascending.
    targets: Vec<usize>,
    body: Body,
    /// The original operation when the segment is still exactly that op
    /// (so emission preserves the specialized `X`/`SWAP`/named-gate kernels
    /// for everything the pass never touched).
    pristine: Option<Operation>,
}

fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn disjoint(a: &[usize], b: &[usize]) -> bool {
    a.iter().all(|q| !b.contains(q))
}

/// Position of every element of `sub` inside `sup` (both sorted, `sub ⊆ sup`).
fn positions(sub: &[usize], sup: &[usize]) -> Vec<usize> {
    sub.iter()
        .map(|q| sup.iter().position(|x| x == q).expect("subset of support"))
        .collect()
}

/// Gather the bits of `idx` at `pos` into a compact sub-index.
fn gather_bits(idx: usize, pos: &[usize]) -> usize {
    pos.iter()
        .enumerate()
        .fold(0usize, |acc, (t, &p)| acc | (((idx >> p) & 1) << t))
}

/// Re-express a diagonal table from support `from` on the larger support `to`.
fn embed_table(table: &[Complex64], from: &[usize], to: &[usize]) -> Vec<Complex64> {
    let pos = positions(from, to);
    (0..1usize << to.len())
        .map(|j| table[gather_bits(j, &pos)])
        .collect()
}

/// Re-express a dense matrix from support `from` on the larger support `to`
/// (tensoring with the identity on the added qubits).
fn embed_dense(m: &CMatrix, from: &[usize], to: &[usize]) -> CMatrix {
    if from == to {
        return m.clone();
    }
    let pos = positions(from, to);
    let from_mask: usize = pos.iter().map(|&p| 1usize << p).sum();
    let dim = 1usize << to.len();
    CMatrix::from_fn(dim, dim, |r, c| {
        if (r ^ c) & !from_mask != 0 {
            ZERO
        } else {
            m[(gather_bits(r, &pos), gather_bits(c, &pos))]
        }
    })
}

/// The segment's body as a dense matrix on its own targets.
fn dense_of(seg: &Segment) -> CMatrix {
    match &seg.body {
        Body::Dense(m) => m.clone(),
        Body::Diag(d) => {
            CMatrix::from_fn(d.len(), d.len(), |r, c| if r == c { d[r] } else { ZERO })
        }
    }
}

/// A controlled diagonal re-expressed as an *uncontrolled* diagonal over
/// `controls ∪ targets` (entries are 1 wherever a control bit is 0).
fn full_diag_table(seg: &Segment) -> (Vec<usize>, Vec<Complex64>) {
    let Body::Diag(d) = &seg.body else {
        unreachable!("full_diag_table is only called on diagonal segments")
    };
    let qubits = union_sorted(&seg.controls, &seg.targets);
    let cmask: usize = positions(&seg.controls, &qubits)
        .iter()
        .map(|&p| 1usize << p)
        .sum();
    let tpos = positions(&seg.targets, &qubits);
    let table = (0..1usize << qubits.len())
        .map(|j| {
            if j & cmask == cmask {
                d[gather_bits(j, &tpos)]
            } else {
                ONE
            }
        })
        .collect();
    (qubits, table)
}

/// Turn one raw operation into a segment; `None` drops it (identity).
fn segment_of(op: &Operation) -> Option<Segment> {
    if matches!(op.gate, Gate::I) {
        return None;
    }
    let mut controls = op.controls.clone();
    controls.sort_unstable();
    let (targets, matrix) = sorted_targets_matrix(op);
    let body = match matrix.diagonal() {
        Some(d) => Body::Diag(d),
        None => Body::Dense(matrix),
    };
    simplify(Segment {
        controls,
        targets,
        body,
        pristine: Some(op.clone()),
    })
}

/// The gate matrix re-indexed so bit `t` of the sub-index corresponds to the
/// `t`-th *ascending* target qubit.
fn sorted_targets_matrix(op: &Operation) -> (Vec<usize>, CMatrix) {
    let m = op.gate.matrix();
    let mut targets = op.targets.clone();
    targets.sort_unstable();
    if targets == op.targets {
        return (targets, m);
    }
    let pos = positions(&targets, &op.targets);
    let dim = m.nrows();
    let map = |j: usize| gather_bits_scatter(j, &pos);
    let sorted = CMatrix::from_fn(dim, dim, |r, c| m[(map(r), map(c))]);
    (targets, sorted)
}

/// Scatter the bits of a (sorted-order) sub-index `j` back to the original
/// target order: bit `t` of `j` lands at position `pos[t]`.
fn gather_bits_scatter(j: usize, pos: &[usize]) -> usize {
    pos.iter()
        .enumerate()
        .fold(0usize, |acc, (t, &p)| acc | (((j >> t) & 1) << p))
}

/// Canonicalize a segment: recognise diagonals, prune qubits the body does
/// not depend on, and drop exact identities entirely (`None`).
fn simplify(mut seg: Segment) -> Option<Segment> {
    // A dense fusion product that came out diagonal joins the diagonal class
    // (cheaper kernel, wider mergeability).
    if let Body::Dense(m) = &seg.body {
        if let Some(d) = m.diagonal() {
            seg.body = Body::Diag(d);
            seg.pristine = None;
        }
    }
    match &mut seg.body {
        Body::Diag(table) => {
            if table.iter().all(|&x| x == ONE) {
                return None; // identity (controlled identity included)
            }
            // Prune target bits the table does not depend on.
            let mut t = 0;
            while seg.targets.len() > 1 && t < seg.targets.len() {
                let bit = 1usize << t;
                let independent = (0..table.len())
                    .filter(|j| j & bit == 0)
                    .all(|j| table[j] == table[j | bit]);
                if independent {
                    let kept: Vec<Complex64> = (0..table.len())
                        .filter(|j| j & bit == 0)
                        .map(|j| table[j])
                        .collect();
                    *table = kept;
                    seg.targets.remove(t);
                    seg.pristine = None;
                } else {
                    t += 1;
                }
            }
        }
        Body::Dense(m) => {
            // Prune target bits on which the matrix factors as the identity.
            let mut t = 0;
            while seg.targets.len() > 1 && t < seg.targets.len() {
                if dense_identity_factor(m, t) {
                    *m = dense_drop_bit(m, t);
                    seg.targets.remove(t);
                    seg.pristine = None;
                } else {
                    t += 1;
                }
            }
        }
    }
    Some(seg)
}

/// True when `m = I ⊗ m'` with the identity on sub-index bit `t`.
fn dense_identity_factor(m: &CMatrix, t: usize) -> bool {
    let dim = m.nrows();
    let bit = 1usize << t;
    for r in 0..dim {
        for c in 0..dim {
            if (r ^ c) & bit != 0 {
                if m[(r, c)] != ZERO {
                    return false;
                }
            } else if r & bit == 0 && m[(r, c)] != m[(r | bit, c | bit)] {
                return false;
            }
        }
    }
    true
}

/// Remove identity-factor bit `t` from a dense matrix.
fn dense_drop_bit(m: &CMatrix, t: usize) -> CMatrix {
    let insert0 = |idx: usize| -> usize {
        let low = idx & ((1usize << t) - 1);
        ((idx >> t) << (t + 1)) | low
    };
    CMatrix::from_fn(m.nrows() / 2, m.ncols() / 2, |r, c| {
        m[(insert0(r), insert0(c))]
    })
}

/// True when the segment's support (controls included) touches any qubit at
/// or above the shard boundary — i.e. serving it sharded costs an exchange.
fn touches_high(seg: &Segment, boundary: Option<usize>) -> bool {
    match boundary {
        Some(m) => seg.controls.iter().chain(&seg.targets).any(|&q| q >= m),
        None => false,
    }
}

/// Fuse `second ∘ first` when the rules allow it (`first` is applied before
/// `second` in circuit order).  The result is not yet simplified.
fn try_fuse(first: &Segment, second: &Segment, opts: &FusionOptions) -> Option<Segment> {
    // Two exchange-bearing ops may fuse beyond the normal dense cap — the
    // merge can retire an exchange round, and the cost gate (which prices
    // rounds when the boundary is set) gets to judge the trade.
    let dense_cap =
        if touches_high(first, opts.shard_boundary) && touches_high(second, opts.shard_boundary) {
            opts.max_fused_qubits.max(MAX_EXCHANGE_FUSED_QUBITS)
        } else {
            opts.max_fused_qubits
        };
    if first.controls == second.controls {
        let union = union_sorted(&first.targets, &second.targets);
        // Nested targets fuse for free: the fused op is no bigger than one
        // the circuit already contained.
        let nested = union == first.targets || union == second.targets;
        if let (Body::Diag(da), Body::Diag(db)) = (&first.body, &second.body) {
            if !nested && union.len() > opts.max_diagonal_qubits {
                return None;
            }
            let ea = embed_table(da, &first.targets, &union);
            let eb = embed_table(db, &second.targets, &union);
            let table = ea.iter().zip(&eb).map(|(a, b)| a * b).collect();
            return Some(Segment {
                controls: first.controls.clone(),
                targets: union,
                body: Body::Diag(table),
                pristine: None,
            });
        }
        if !nested && union.len() > dense_cap {
            return None;
        }
        let ma = embed_dense(&dense_of(first), &first.targets, &union);
        let mb = embed_dense(&dense_of(second), &second.targets, &union);
        return Some(Segment {
            controls: first.controls.clone(),
            targets: union,
            body: Body::Dense(mb.matmul(&ma)),
            pristine: None,
        });
    }
    // Mismatched control sets: diagonals fuse by folding the controls into
    // the diagonal support (a controlled diagonal is a diagonal).
    let sa = union_sorted(&first.controls, &first.targets);
    let sb = union_sorted(&second.controls, &second.targets);
    if matches!(first.body, Body::Diag(_)) && matches!(second.body, Body::Diag(_)) {
        // Check the support cap before materializing any 2^k table: heavily
        // controlled diagonals would otherwise allocate huge tables only to
        // be rejected.
        if union_sorted(&sa, &sb).len() > opts.max_diagonal_qubits {
            return None;
        }
        let (qa, ta) = full_diag_table(first);
        let (qb, tb) = full_diag_table(second);
        let union = union_sorted(&qa, &qb);
        let ea = embed_table(&ta, &qa, &union);
        let eb = embed_table(&tb, &qb, &union);
        let table = ea.iter().zip(&eb).map(|(a, b)| a * b).collect();
        return Some(Segment {
            controls: Vec::new(),
            targets: union,
            body: Body::Diag(table),
            pristine: None,
        });
    }
    // Mask-densifying fusion: dense ops with different control sets fuse by
    // embedding each as an *uncontrolled* block-diagonal matrix over its
    // controls ∪ targets (identity wherever its controls are unsatisfied).
    // Only attempted on overlapping supports — fusing disjoint ops saves
    // nothing and would block commuting hops (and later cancellations) —
    // and always within the dense cap, since the fused op trades the cheap
    // control-subspace enumeration for a full dense sweep.  The caller's
    // cost gate decides whether that trade pays.
    if disjoint(&sa, &sb) {
        return None;
    }
    let union = union_sorted(&sa, &sb);
    if union.len() > dense_cap {
        return None;
    }
    let ma = embed_dense(&controlled_dense(first), &sa, &union);
    let mb = embed_dense(&controlled_dense(second), &sb, &union);
    Some(Segment {
        controls: Vec::new(),
        targets: union,
        body: Body::Dense(mb.matmul(&ma)),
        pristine: None,
    })
}

/// A controlled segment re-expressed as an *uncontrolled* dense matrix over
/// `controls ∪ targets`: the body on the control-satisfied block, the
/// identity elsewhere.
fn controlled_dense(seg: &Segment) -> CMatrix {
    let qubits = union_sorted(&seg.controls, &seg.targets);
    let cmask: usize = positions(&seg.controls, &qubits)
        .iter()
        .map(|&p| 1usize << p)
        .sum();
    let tpos = positions(&seg.targets, &qubits);
    let tmask: usize = tpos.iter().map(|&p| 1usize << p).sum();
    let m = dense_of(seg);
    let dim = 1usize << qubits.len();
    CMatrix::from_fn(dim, dim, |r, c| {
        if r & cmask != cmask || c & cmask != cmask {
            // Outside the control-satisfied block the op is the identity.
            if r == c {
                ONE
            } else {
                ZERO
            }
        } else if (r ^ c) & !tmask != 0 {
            ZERO
        } else {
            m[(gather_bits(r, &tpos), gather_bits(c, &tpos))]
        }
    })
}

/// Estimated complex multiplies of one application of this segment to a
/// `len`-amplitude register, mirroring the kernel dispatch of
/// [`crate::kernels`]: diagonals and permutation gates (X/SWAP) cost one
/// multiply-equivalent per visited amplitude, dense `k`-target ops cost
/// `4^k` per `2^k`-block, and controls shrink the visited subspace.
///
/// With a shard `boundary` set the sweep also pays for the data movement the
/// sharded executor ([`crate::shard`]) performs to serve it: one round-trip
/// pairwise exchange per high qubit (support qubit ≥ boundary) when the
/// support fits an exchange round, or the full gather/scatter (priced as
/// permuting every shard qubit, never cheaper than any exchange) when it
/// does not.  Merging two high ops then visibly saves a round, so the cost
/// gate steers fusion toward low-qubit support.
fn sweep_cost(seg: &Segment, len: usize, units: &CostUnits, boundary: Option<usize>) -> usize {
    let movement = match boundary {
        Some(m) => {
            let support = union_sorted(&seg.controls, &seg.targets);
            let high = support.iter().filter(|&&q| q >= m).count();
            if high == 0 {
                0.0
            } else {
                let shard_qubits = (len.trailing_zeros() as usize).saturating_sub(m);
                let exchanged = if support.len() <= m {
                    high
                } else {
                    shard_qubits.max(high)
                };
                exchanged as f64 * (EXCHANGE_ROUND_OVERHEAD + len as f64 * units.exchange)
            }
        }
        None => 0.0,
    };
    let c = seg.controls.len();
    let (count, unit) = match &seg.body {
        // Phase-shift-class diagonals (unit leading entry, one target) only
        // touch the target-bit-set half of the subspace; general diagonals
        // visit every control-satisfied amplitude once.  Multi-target tables
        // (the DiagonalK kernel) pay a per-amplitude bit-gather on top of
        // the multiply.
        Body::Diag(d) if seg.targets.len() == 1 && d[0] == ONE => (len >> (c + 1), units.phase),
        Body::Diag(_) if seg.targets.len() == 1 => (len >> c, units.diag1),
        Body::Diag(_) => (len >> c, units.diagk),
        Body::Dense(_) => {
            let k = seg.targets.len();
            let unit = match seg.pristine.as_ref().map(|op| &op.gate) {
                // Permutation kernels move amplitudes without arithmetic.
                Some(Gate::X) | Some(Gate::Swap) => units.perm,
                // The generic k ≥ 2 kernel pays a gather/scatter and strided
                // access on top of its 4^k multiplies (the static table
                // prices that at double the contiguous single-qubit path;
                // the measured model times it directly).
                _ if k >= 2 => units.generic(k),
                _ => units.single,
            };
            (((len >> c) >> k).max(1), unit)
        }
    };
    (count as f64 * unit + movement).round() as usize
}

/// True when the two segments are guaranteed to commute: disjoint supports
/// (controls included), or both diagonal in the computational basis.
fn commutes(a: &Segment, b: &Segment) -> bool {
    if matches!(a.body, Body::Diag(_)) && matches!(b.body, Body::Diag(_)) {
        return true;
    }
    let sa = union_sorted(&a.controls, &a.targets);
    let sb = union_sorted(&b.controls, &b.targets);
    disjoint(&sa, &sb)
}

/// Emit a segment back as an operation.
fn emit(seg: Segment) -> Operation {
    if let Some(op) = seg.pristine {
        return op;
    }
    let matrix = dense_of(&seg);
    Operation::new(Gate::Unitary(matrix), seg.targets, seg.controls)
}

/// Run the fusion/diagonal-merging pass, returning the rewritten circuit.
///
/// The output implements the same unitary (up to floating-point roundoff in
/// the fused matrix products, ≲ 1e-13 for realistic depths) on the same
/// register width, with a shorter — never longer — operation list.
pub fn optimize_circuit(circuit: &Circuit, opts: &FusionOptions) -> Circuit {
    optimize_circuit_for(circuit, circuit.num_qubits(), opts)
}

/// [`optimize_circuit`] with the width of the register the circuit will
/// actually run on (≥ the circuit's own width).  The cost gate prices sweeps
/// at that width, so a small circuit compiled for a big register keeps its
/// cheap structured sweeps instead of densifying.
pub fn optimize_circuit_for(circuit: &Circuit, num_qubits: usize, opts: &FusionOptions) -> Circuit {
    assert!(
        circuit.num_qubits() <= num_qubits,
        "circuit needs {} qubits, register has {}",
        circuit.num_qubits(),
        num_qubits
    );
    FUSION_PASSES.with(|c| c.set(c.get() + 1));
    let len = 1usize << num_qubits;
    let units = resolve_units(opts.cost_model, num_qubits);
    let boundary = opts.shard_boundary.map(|b| b.min(num_qubits));
    let cost = |seg: &Segment| sweep_cost(seg, len, &units, boundary);
    let mut out: Vec<Segment> = Vec::new();
    'ops: for op in circuit.operations() {
        let Some(seg) = segment_of(op) else {
            continue; // identity
        };
        let lo = out.len().saturating_sub(opts.lookback.max(1));
        for j in (lo..out.len()).rev() {
            if let Some(fused) = try_fuse(&out[j], &seg, opts) {
                match simplify(fused) {
                    None => {
                        out.remove(j); // the pair cancelled to the identity
                        continue 'ops;
                    }
                    Some(f) => {
                        // Accept only when the fused sweep is no costlier
                        // than the two sweeps it replaces (plus the saved
                        // per-op overhead); otherwise keep scanning — a
                        // cheaper partner may sit behind a commuting segment.
                        let split = cost(&out[j])
                            .saturating_add(cost(&seg))
                            .saturating_add(opts.op_overhead_cost);
                        if cost(&f) <= split {
                            out[j] = f;
                            continue 'ops;
                        }
                        // Two-op lookahead: the pairwise intermediate is too
                        // costly, but composing it with the *preceding*
                        // segment may still collapse — the X·D·X conjugation
                        // whose greedy X·D intermediate is a dense sweep the
                        // gate just refused.
                        if j >= 1 {
                            if let Some(traw) = try_fuse(&out[j - 1], &f, opts) {
                                let triple_split = cost(&out[j - 1])
                                    .saturating_add(cost(&out[j]))
                                    .saturating_add(cost(&seg))
                                    .saturating_add(2 * opts.op_overhead_cost);
                                match simplify(traw) {
                                    None => {
                                        // The triple cancelled to the identity.
                                        out.remove(j);
                                        out.remove(j - 1);
                                        continue 'ops;
                                    }
                                    Some(t) if cost(&t) <= triple_split => {
                                        out[j - 1] = t;
                                        out.remove(j);
                                        continue 'ops;
                                    }
                                    Some(_) => {}
                                }
                            }
                        }
                    }
                }
            }
            if !commutes(&out[j], &seg) {
                break;
            }
        }
        out.push(seg);
    }
    let mut fused = Circuit::new(circuit.num_qubits());
    for seg in out {
        fused.push(emit(seg));
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    fn assert_equivalent(raw: &Circuit, opts: &FusionOptions) -> Circuit {
        let fused = optimize_circuit(raw, opts);
        for col in 0..1usize << raw.num_qubits() {
            let mut a = StateVector::basis_state(raw.num_qubits(), col);
            a.apply_circuit(raw);
            let mut b = StateVector::basis_state(raw.num_qubits(), col);
            b.apply_circuit(&fused);
            let diff: f64 = a
                .amplitudes()
                .iter()
                .zip(b.amplitudes())
                .map(|(x, y)| (x - y).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "column {col} deviates by {diff}");
        }
        fused
    }

    #[test]
    fn single_qubit_rotation_chain_fuses_to_one_op() {
        let mut c = Circuit::new(2);
        c.h(0).rx(0, 0.3).ry(0, -1.1).rz(0, 0.7).h(0);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn diagonal_chain_merges_across_qubits_and_controls() {
        let mut c = Circuit::new(3);
        c.rz(0, 0.4).t(1).cphase(0, 2, 0.9).z(2).crz(2, 1, -0.5);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1, "all-diagonal circuit must merge fully");
    }

    #[test]
    fn x_conjugation_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.x(1).phase(1, 0.8).x(1);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        // X·P(φ)·X = diag(e^{iφ}, 1): one diagonal op.
        assert_eq!(fused.len(), 1);
        let mut cancel = Circuit::new(1);
        cancel.x(0).x(0);
        assert!(optimize_circuit(&cancel, &FusionOptions::default()).is_empty());
    }

    #[test]
    fn matching_control_masks_fuse_mismatched_masks_are_cost_gated() {
        let mut c = Circuit::new(3);
        c.controlled_gate(Gate::X, &[0], &[2])
            .controlled_gate(Gate::Ry(0.4), &[0], &[2])
            .controlled_gate(Gate::H, &[0], &[1]);
        // Small register: CX/CRy share controls {2} and fuse; the
        // {1}-controlled H then mask-densifies over {0, 1, 2} — one op.
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
        // Large register: mask-densification is cost-rejected, so the
        // shared-control fusion keeps its cheap subspace enumeration.
        let large = optimize_circuit_for(&c, 14, &FusionOptions::default());
        assert_eq!(large.len(), 2);
        assert_eq!(large.operations()[0].controls, vec![2]);
    }

    #[test]
    fn mismatched_controls_densify_only_when_cheap() {
        // Two controlled dense ops with different control sets and
        // overlapping supports: block-diagonal embedding over
        // controls ∪ targets lets them fuse on a small register...
        let mut c = Circuit::new(3);
        c.controlled_gate(Gate::X, &[0], &[2])
            .controlled_gate(Gate::H, &[0], &[1]);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
        assert!(fused.operations()[0].controls.is_empty());
        // ...while on a large register the densified full sweep costs more
        // than the two control-subspace sweeps and must be rejected.
        let large = optimize_circuit_for(&c, 14, &FusionOptions::default());
        assert_eq!(large.len(), 2);
        // Disjoint supports never mask-densify (it would save nothing and
        // block commuting hops).
        let mut d = Circuit::new(4);
        d.controlled_gate(Gate::X, &[0], &[1])
            .controlled_gate(Gate::X, &[2], &[3]);
        let kept = assert_equivalent(&d, &FusionOptions::default());
        assert_eq!(kept.len(), 2);
    }

    #[test]
    fn x_conjugation_fuses_through_the_lookahead_on_large_registers() {
        // On a large register the greedy X·D intermediate is a dense pair
        // sweep the cost gate refuses (X + phase are cheaper apart), but
        // the full X·D·X conjugation is one cheap diagonal: the two-op
        // lookahead must land it.
        let mut c = Circuit::new(14);
        c.x(1).phase(1, 0.8).x(1);
        let fused = optimize_circuit(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1, "X·P·X must collapse to one diagonal");
        match &fused.operations()[0].gate {
            Gate::Unitary(m) => assert!(m.diagonal().is_some(), "fusion result must be diagonal"),
            g => panic!("expected a fused unitary, found {g:?}"),
        }
        // Degenerate conjugations still vanish completely (the zero phase
        // drops as an identity, then the X pair cancels).
        let mut cancel = Circuit::new(14);
        cancel.x(3).phase(3, 0.0).x(3);
        assert!(optimize_circuit(&cancel, &FusionOptions::default()).is_empty());
    }

    #[test]
    fn measured_model_calibrates_once_per_register_size() {
        let mut c = Circuit::new(5);
        c.h(0).rz(0, 0.4).cx(0, 1).x(2).phase(2, 1.1).x(2);
        let opts = FusionOptions::measured();
        let before = calibration_count();
        let first = optimize_circuit(&c, &opts);
        assert_eq!(
            calibration_count(),
            before + 1,
            "first measured-model run calibrates this register size"
        );
        let second = optimize_circuit(&c, &opts);
        assert_eq!(
            calibration_count(),
            before + 1,
            "second run must reuse the thread-local cache"
        );
        assert_eq!(first.len(), second.len(), "cached units → same decisions");
        // Static pricing never calibrates.
        optimize_circuit(&c, &FusionOptions::default());
        assert_eq!(calibration_count(), before + 1);
        // And the measured-model output is still the same unitary.
        assert_equivalent(&c, &opts);
    }

    #[test]
    fn measured_units_stay_within_the_static_envelope() {
        let u = calibrate(10);
        let s = STATIC_UNITS;
        for (name, measured, stat) in [
            ("phase", u.phase, s.phase),
            ("diag1", u.diag1, s.diag1),
            ("diagk", u.diagk, s.diagk),
            ("perm", u.perm, s.perm),
            ("single", u.single, s.single),
            ("generic2", u.generic2, s.generic2),
            ("generic3", u.generic3, s.generic3),
        ] {
            assert!(
                measured >= stat * 0.25 && measured <= stat * 4.0,
                "{name} unit {measured} escaped the [0.25, 4]x clamp of {stat}"
            );
        }
        // The generic extrapolation grows 4x per extra target qubit.
        assert!((u.generic(4) - u.generic3 * 4.0).abs() < 1e-12);
        assert!((STATIC_UNITS.generic(5) - (2u64 << 10) as f64).abs() < 1e-12);
    }

    #[test]
    fn cost_model_defaults() {
        assert_eq!(FusionOptions::default().cost_model, CostModel::Static);
        assert_eq!(FusionOptions::measured().cost_model, CostModel::Measured);
        assert_eq!(CostModel::default(), CostModel::Static);
    }

    #[test]
    fn commuting_gates_are_hopped_over() {
        let build = |n: usize| {
            let mut c = Circuit::new(n);
            c.ry(0, 0.3).h(2).cx(2, 3).ry(0, -0.3);
            c
        };
        // Equivalence on the small register, where densification is cheap
        // enough that the pass may collapse everything.
        assert_equivalent(&build(4), &FusionOptions::default());
        // On a large register densification is cost-rejected, so the second
        // Ry must hop backwards over the disjoint h/cx to merge with the
        // first.  Ry(θ)·Ry(−θ) is an identity only up to roundoff (its
        // diagonal is cos² + sin²), so the merged pair survives as one
        // dense single-qubit op: 4 raw ops become 3.
        let fused = optimize_circuit(&build(14), &FusionOptions::default());
        assert_eq!(fused.len(), 3);
        let on_q0 = fused
            .operations()
            .iter()
            .filter(|op| op.targets == [0])
            .count();
        assert_eq!(on_q0, 1, "the hopped Ry pair must merge into one op");
        // An exactly self-inverse pair (X·X = I in floats) cancels outright
        // after the same backwards hop.
        let mut exact = Circuit::new(14);
        exact.x(0).h(2).cx(2, 3).x(0);
        assert_eq!(optimize_circuit(&exact, &FusionOptions::default()).len(), 2);
    }

    #[test]
    fn nested_targets_fuse_beyond_the_dense_cap() {
        // A 4-target dense op (beyond K = 3) still absorbs single-qubit ops
        // on its own support.
        let mut inner = Circuit::new(4);
        inner.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(3, 0.3);
        let u = crate::unitary::circuit_unitary(&inner);
        let mut c = Circuit::new(4);
        c.rz(1, 0.7);
        c.gate(Gate::Unitary(u), &[0, 1, 2, 3]);
        c.phase(2, -0.4).x(0);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut c = Circuit::new(2);
        c.gate(Gate::I, &[0])
            .controlled_gate(Gate::I, &[1], &[0])
            .h(1);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn unsorted_targets_are_canonicalised() {
        // SWAP with targets given in descending order must still fuse
        // correctly with ops on its support.
        let mut c = Circuit::new(3);
        c.gate(Gate::Swap, &[2, 0]).h(0).h(2);
        assert_equivalent(&c, &FusionOptions::default());
    }

    #[test]
    fn lookback_zero_still_fuses_adjacent_ops() {
        let opts = FusionOptions {
            lookback: 0,
            ..Default::default()
        };
        let mut c = Circuit::new(1);
        c.rz(0, 0.1).rz(0, 0.2);
        assert_eq!(assert_equivalent(&c, &opts).len(), 1);
    }

    #[test]
    fn costly_densification_is_rejected_on_large_registers() {
        // Three H's on distinct qubits of a big register: densifying them
        // into one 3-qubit generic block (64 multiplies per 8 amplitudes)
        // costs more arithmetic than three pair sweeps, so above the
        // overhead break-even the pass must leave them alone — while the
        // same circuit on a small register fuses fully.
        let build = |n: usize| {
            let mut c = Circuit::new(n);
            c.h(0).h(1).h(2);
            c
        };
        let opts = FusionOptions::default();
        // The generic k >= 2 kernel is costed at twice its multiply count
        // (gather/scatter overhead), so none of the cross-qubit
        // densifications pay off on a big register.
        let large = optimize_circuit(&build(14), &opts);
        assert_eq!(large.len(), 3, "no densification at 14 qubits");
        let small = assert_equivalent(&build(3), &opts);
        assert_eq!(small.len(), 1, "full fusion on a 3-qubit register");
        // Equal-target fusion is cost-neutral and must happen at any size.
        let mut pair = Circuit::new(14);
        pair.ry(5, 0.3).rx(5, -0.8);
        assert_eq!(optimize_circuit(&pair, &opts).len(), 1);
        // A small circuit compiled for a big register must be priced at the
        // *register* width, not its own width.
        let widened = optimize_circuit_for(&build(3), 14, &opts);
        assert_eq!(widened.len(), 3, "no densification when run on 14 qubits");
    }

    #[test]
    fn stats_ratios() {
        let stats = CircuitStats {
            raw_ops: 10,
            fused_ops: 4,
            raw_sweep_work: 100,
            fused_sweep_work: 50,
        };
        assert!((stats.op_reduction() - 2.5).abs() < 1e-15);
        assert!((stats.work_reduction() - 2.0).abs() < 1e-15);
        let empty = CircuitStats {
            raw_ops: 0,
            fused_ops: 0,
            raw_sweep_work: 0,
            fused_sweep_work: 0,
        };
        assert_eq!(empty.op_reduction(), 1.0);
    }
}
