//! Circuit-optimizer pass: gate fusion and diagonal merging.
//!
//! The compiled kernels of [`crate::kernels`] make each *individual* gate as
//! cheap as it can be, but a circuit of `m` gates still performs `m` sweeps
//! over the `2^n`-amplitude register.  This module rewrites the operation
//! list *before* compilation so repeated executions pay fewer, denser sweeps:
//!
//! 1. **Dense fusion.**  Runs of adjacent gates whose combined *target*
//!    support stays within [`FusionOptions::max_fused_qubits`] qubits
//!    (default 3) are fused into one dense operation by multiplying their
//!    embedded matrices.  Fusion is always allowed — regardless of the cap —
//!    when one operation's targets are a subset of the other's, because the
//!    fused op is no larger than what the circuit already contained (this is
//!    what lets a deep QSVT sequence collapse into its block-encoding-sized
//!    product).
//! 2. **Diagonal merging.**  Operations that are diagonal in the
//!    computational basis (`Z`/`S`/`T`/`Rz`/`Phase`/`GlobalPhase`, their
//!    controlled forms, and any diagonal `Gate::Unitary`) multiply entrywise,
//!    so chains of them — even on *different* qubits and with *different*
//!    control sets — merge into a single diagonal of support up to
//!    [`FusionOptions::max_diagonal_qubits`].  A controlled diagonal is
//!    itself a diagonal, so mismatched control masks fold into the table.
//! 3. **Controlled fusion.**  Controlled operations fuse whenever their
//!    control sets match: both act as the identity outside the
//!    control-satisfied subspace and compose inside it, so the fused op keeps
//!    the (cheaper) controlled kernel enumeration.
//! 4. **Cleanup.**  Identities (including fusion products that cancel to the
//!    identity, e.g. the `X … X` conjugation pairs of projector rotations)
//!    are dropped, and diagonal factors that do not depend on one of their
//!    qubits are pruned down to their true support.
//!
//! The pass is a single greedy sweep: each incoming operation looks backwards
//! through the last [`FusionOptions::lookback`] emitted segments, hopping
//! over segments it commutes with (disjoint support, or both diagonal), and
//! fuses into the first compatible one.  Each candidate fusion is priced on
//! this circuit's register before it is accepted: a fusion that would *raise*
//! the estimated sweep cost by more than the saved per-op overhead
//! ([`FusionOptions::op_overhead_cost`]) is rejected, so cheap structured
//! sweeps survive on large registers where arithmetic dominates dispatch,
//! while small solver registers (dispatch-dominated) and cost-neutral fusions
//! (nested or equal targets — the QSVT collapse) fuse at any size.
//! Everything is plain matrix algebra on supports of at most a handful of
//! qubits, *independent of the register size*: the pass costs the equivalent
//! of a few dozen executions at worst (deep circuits collapsing into dense
//! products, e.g. the degree-117 QSVT sequence), repaid across the
//! many-execution workloads the compile-once engines exist for — and far
//! less than one execution on large registers, where it mostly declines to
//! fuse.
//!
//! Use [`optimize_circuit`] directly, or (more commonly)
//! [`CompiledCircuit::optimized`](crate::kernels::CompiledCircuit::optimized)
//! / [`OptLevel::Fuse`](crate::executor::OptLevel) on
//! [`QuantumExecutor`](crate::executor::QuantumExecutor), which also report
//! the before/after [`CircuitStats`].  The unoptimized compile path is
//! retained as the equivalence oracle (`OptLevel::None`, mirroring
//! `kernels::reference`): optimized execution agrees with it to 1e-12 on the
//! property tests in `crates/sim/tests/fusion_equivalence.rs`.

use crate::circuit::{Circuit, Operation};
use crate::cmatrix::CMatrix;
use crate::gate::Gate;
use num_complex::Complex64;
use serde::Serialize;

const ZERO: Complex64 = Complex64::new(0.0, 0.0);
const ONE: Complex64 = Complex64::new(1.0, 0.0);

/// Tuning knobs of the fusion pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionOptions {
    /// Combined-target cap `K` for dense fusion: two dense ops fuse only when
    /// the union of their targets has at most this many qubits (cost of the
    /// fused generic kernel grows as `4^K` per block, so small caps win).
    /// Ops whose targets nest (subset) always fuse, whatever the cap.
    pub max_fused_qubits: usize,
    /// Support cap for merged diagonals.  A diagonal sweep costs one multiply
    /// per amplitude regardless of support, so this can sit well above
    /// `max_fused_qubits`; it only bounds the `2^k` table size.
    pub max_diagonal_qubits: usize,
    /// How many already-emitted segments an incoming op may scan backwards
    /// (hopping over commuting segments) to find a fusion partner.
    pub lookback: usize,
    /// Fixed cost of one operation application, in complex-multiply
    /// equivalents (dispatch, bounds checks, loop setup, and one more full
    /// pass over the memory-resident state).  A fusion is accepted only when
    /// `sweep_cost(fused) ≤ sweep_cost(a) + sweep_cost(b) + op_overhead_cost`
    /// on this circuit's register, so cheap structured sweeps (X, SWAP,
    /// phase, single-qubit pairs) are *not* densified into `4^k`-multiply
    /// generic blocks on registers large enough that the extra arithmetic
    /// outweighs the saved dispatch.  Nested-target and equal-target fusions
    /// never increase the sweep cost, so they pass at any register size.
    pub op_overhead_cost: usize,
}

impl Default for FusionOptions {
    fn default() -> Self {
        FusionOptions {
            max_fused_qubits: 3,
            max_diagonal_qubits: 6,
            lookback: 16,
            op_overhead_cost: 512,
        }
    }
}

/// Before/after report of one optimization run.
///
/// "Sweep work" is the same quantity the kernels' parallel-fan-out decision
/// uses ([`crate::kernels::CompiledOp::work_estimate`]): free-index count ×
/// per-iteration cost, summed over the circuit — an estimate of the complex
/// multiplies one full application performs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct CircuitStats {
    /// Operation count of the raw circuit.
    pub raw_ops: usize,
    /// Operation count after fusion.
    pub fused_ops: usize,
    /// Estimated complex multiplies per application of the raw circuit.
    pub raw_sweep_work: usize,
    /// Estimated complex multiplies per application after fusion.
    pub fused_sweep_work: usize,
}

impl CircuitStats {
    /// Raw-to-fused op-count ratio (≥ 1 in practice; the pass never splits).
    pub fn op_reduction(&self) -> f64 {
        ratio(self.raw_ops, self.fused_ops)
    }

    /// Raw-to-fused estimated-sweep-work ratio.
    pub fn work_reduction(&self) -> f64 {
        ratio(self.raw_sweep_work, self.fused_sweep_work)
    }
}

fn ratio(raw: usize, fused: usize) -> f64 {
    if fused == 0 {
        if raw == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        raw as f64 / fused as f64
    }
}

/// How a segment acts on its targets.
#[derive(Debug, Clone)]
enum Body {
    /// Dense `2^k × 2^k` matrix (row/column bit `t` ↔ `targets[t]`).
    Dense(CMatrix),
    /// Diagonal of a computational-basis-diagonal op (`2^k` entries).
    Diag(Vec<Complex64>),
}

/// One (possibly fused) operation in the optimizer's working list.
#[derive(Debug, Clone)]
struct Segment {
    /// Control qubits, sorted ascending.
    controls: Vec<usize>,
    /// Target qubits, sorted ascending.
    targets: Vec<usize>,
    body: Body,
    /// The original operation when the segment is still exactly that op
    /// (so emission preserves the specialized `X`/`SWAP`/named-gate kernels
    /// for everything the pass never touched).
    pristine: Option<Operation>,
}

fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn disjoint(a: &[usize], b: &[usize]) -> bool {
    a.iter().all(|q| !b.contains(q))
}

/// Position of every element of `sub` inside `sup` (both sorted, `sub ⊆ sup`).
fn positions(sub: &[usize], sup: &[usize]) -> Vec<usize> {
    sub.iter()
        .map(|q| sup.iter().position(|x| x == q).expect("subset of support"))
        .collect()
}

/// Gather the bits of `idx` at `pos` into a compact sub-index.
fn gather_bits(idx: usize, pos: &[usize]) -> usize {
    pos.iter()
        .enumerate()
        .fold(0usize, |acc, (t, &p)| acc | (((idx >> p) & 1) << t))
}

/// Re-express a diagonal table from support `from` on the larger support `to`.
fn embed_table(table: &[Complex64], from: &[usize], to: &[usize]) -> Vec<Complex64> {
    let pos = positions(from, to);
    (0..1usize << to.len())
        .map(|j| table[gather_bits(j, &pos)])
        .collect()
}

/// Re-express a dense matrix from support `from` on the larger support `to`
/// (tensoring with the identity on the added qubits).
fn embed_dense(m: &CMatrix, from: &[usize], to: &[usize]) -> CMatrix {
    if from == to {
        return m.clone();
    }
    let pos = positions(from, to);
    let from_mask: usize = pos.iter().map(|&p| 1usize << p).sum();
    let dim = 1usize << to.len();
    CMatrix::from_fn(dim, dim, |r, c| {
        if (r ^ c) & !from_mask != 0 {
            ZERO
        } else {
            m[(gather_bits(r, &pos), gather_bits(c, &pos))]
        }
    })
}

/// The segment's body as a dense matrix on its own targets.
fn dense_of(seg: &Segment) -> CMatrix {
    match &seg.body {
        Body::Dense(m) => m.clone(),
        Body::Diag(d) => {
            CMatrix::from_fn(d.len(), d.len(), |r, c| if r == c { d[r] } else { ZERO })
        }
    }
}

/// A controlled diagonal re-expressed as an *uncontrolled* diagonal over
/// `controls ∪ targets` (entries are 1 wherever a control bit is 0).
fn full_diag_table(seg: &Segment) -> (Vec<usize>, Vec<Complex64>) {
    let Body::Diag(d) = &seg.body else {
        unreachable!("full_diag_table is only called on diagonal segments")
    };
    let qubits = union_sorted(&seg.controls, &seg.targets);
    let cmask: usize = positions(&seg.controls, &qubits)
        .iter()
        .map(|&p| 1usize << p)
        .sum();
    let tpos = positions(&seg.targets, &qubits);
    let table = (0..1usize << qubits.len())
        .map(|j| {
            if j & cmask == cmask {
                d[gather_bits(j, &tpos)]
            } else {
                ONE
            }
        })
        .collect();
    (qubits, table)
}

/// Turn one raw operation into a segment; `None` drops it (identity).
fn segment_of(op: &Operation) -> Option<Segment> {
    if matches!(op.gate, Gate::I) {
        return None;
    }
    let mut controls = op.controls.clone();
    controls.sort_unstable();
    let (targets, matrix) = sorted_targets_matrix(op);
    let body = match matrix.diagonal() {
        Some(d) => Body::Diag(d),
        None => Body::Dense(matrix),
    };
    simplify(Segment {
        controls,
        targets,
        body,
        pristine: Some(op.clone()),
    })
}

/// The gate matrix re-indexed so bit `t` of the sub-index corresponds to the
/// `t`-th *ascending* target qubit.
fn sorted_targets_matrix(op: &Operation) -> (Vec<usize>, CMatrix) {
    let m = op.gate.matrix();
    let mut targets = op.targets.clone();
    targets.sort_unstable();
    if targets == op.targets {
        return (targets, m);
    }
    let pos = positions(&targets, &op.targets);
    let dim = m.nrows();
    let map = |j: usize| gather_bits_scatter(j, &pos);
    let sorted = CMatrix::from_fn(dim, dim, |r, c| m[(map(r), map(c))]);
    (targets, sorted)
}

/// Scatter the bits of a (sorted-order) sub-index `j` back to the original
/// target order: bit `t` of `j` lands at position `pos[t]`.
fn gather_bits_scatter(j: usize, pos: &[usize]) -> usize {
    pos.iter()
        .enumerate()
        .fold(0usize, |acc, (t, &p)| acc | (((j >> t) & 1) << p))
}

/// Canonicalize a segment: recognise diagonals, prune qubits the body does
/// not depend on, and drop exact identities entirely (`None`).
fn simplify(mut seg: Segment) -> Option<Segment> {
    // A dense fusion product that came out diagonal joins the diagonal class
    // (cheaper kernel, wider mergeability).
    if let Body::Dense(m) = &seg.body {
        if let Some(d) = m.diagonal() {
            seg.body = Body::Diag(d);
            seg.pristine = None;
        }
    }
    match &mut seg.body {
        Body::Diag(table) => {
            if table.iter().all(|&x| x == ONE) {
                return None; // identity (controlled identity included)
            }
            // Prune target bits the table does not depend on.
            let mut t = 0;
            while seg.targets.len() > 1 && t < seg.targets.len() {
                let bit = 1usize << t;
                let independent = (0..table.len())
                    .filter(|j| j & bit == 0)
                    .all(|j| table[j] == table[j | bit]);
                if independent {
                    let kept: Vec<Complex64> = (0..table.len())
                        .filter(|j| j & bit == 0)
                        .map(|j| table[j])
                        .collect();
                    *table = kept;
                    seg.targets.remove(t);
                    seg.pristine = None;
                } else {
                    t += 1;
                }
            }
        }
        Body::Dense(m) => {
            // Prune target bits on which the matrix factors as the identity.
            let mut t = 0;
            while seg.targets.len() > 1 && t < seg.targets.len() {
                if dense_identity_factor(m, t) {
                    *m = dense_drop_bit(m, t);
                    seg.targets.remove(t);
                    seg.pristine = None;
                } else {
                    t += 1;
                }
            }
        }
    }
    Some(seg)
}

/// True when `m = I ⊗ m'` with the identity on sub-index bit `t`.
fn dense_identity_factor(m: &CMatrix, t: usize) -> bool {
    let dim = m.nrows();
    let bit = 1usize << t;
    for r in 0..dim {
        for c in 0..dim {
            if (r ^ c) & bit != 0 {
                if m[(r, c)] != ZERO {
                    return false;
                }
            } else if r & bit == 0 && m[(r, c)] != m[(r | bit, c | bit)] {
                return false;
            }
        }
    }
    true
}

/// Remove identity-factor bit `t` from a dense matrix.
fn dense_drop_bit(m: &CMatrix, t: usize) -> CMatrix {
    let insert0 = |idx: usize| -> usize {
        let low = idx & ((1usize << t) - 1);
        ((idx >> t) << (t + 1)) | low
    };
    CMatrix::from_fn(m.nrows() / 2, m.ncols() / 2, |r, c| {
        m[(insert0(r), insert0(c))]
    })
}

/// Fuse `second ∘ first` when the rules allow it (`first` is applied before
/// `second` in circuit order).  The result is not yet simplified.
fn try_fuse(first: &Segment, second: &Segment, opts: &FusionOptions) -> Option<Segment> {
    if first.controls == second.controls {
        let union = union_sorted(&first.targets, &second.targets);
        // Nested targets fuse for free: the fused op is no bigger than one
        // the circuit already contained.
        let nested = union == first.targets || union == second.targets;
        if let (Body::Diag(da), Body::Diag(db)) = (&first.body, &second.body) {
            if !nested && union.len() > opts.max_diagonal_qubits {
                return None;
            }
            let ea = embed_table(da, &first.targets, &union);
            let eb = embed_table(db, &second.targets, &union);
            let table = ea.iter().zip(&eb).map(|(a, b)| a * b).collect();
            return Some(Segment {
                controls: first.controls.clone(),
                targets: union,
                body: Body::Diag(table),
                pristine: None,
            });
        }
        if !nested && union.len() > opts.max_fused_qubits {
            return None;
        }
        let ma = embed_dense(&dense_of(first), &first.targets, &union);
        let mb = embed_dense(&dense_of(second), &second.targets, &union);
        return Some(Segment {
            controls: first.controls.clone(),
            targets: union,
            body: Body::Dense(mb.matmul(&ma)),
            pristine: None,
        });
    }
    // Mismatched control sets: only diagonals fuse, by folding the controls
    // into the diagonal support (a controlled diagonal is a diagonal).
    if matches!(first.body, Body::Diag(_)) && matches!(second.body, Body::Diag(_)) {
        // Check the support cap before materializing any 2^k table: heavily
        // controlled diagonals would otherwise allocate huge tables only to
        // be rejected.
        let sa = union_sorted(&first.controls, &first.targets);
        let sb = union_sorted(&second.controls, &second.targets);
        if union_sorted(&sa, &sb).len() > opts.max_diagonal_qubits {
            return None;
        }
        let (qa, ta) = full_diag_table(first);
        let (qb, tb) = full_diag_table(second);
        let union = union_sorted(&qa, &qb);
        let ea = embed_table(&ta, &qa, &union);
        let eb = embed_table(&tb, &qb, &union);
        let table = ea.iter().zip(&eb).map(|(a, b)| a * b).collect();
        return Some(Segment {
            controls: Vec::new(),
            targets: union,
            body: Body::Diag(table),
            pristine: None,
        });
    }
    None
}

/// Estimated complex multiplies of one application of this segment to a
/// `len`-amplitude register, mirroring the kernel dispatch of
/// [`crate::kernels`]: diagonals and permutation gates (X/SWAP) cost one
/// multiply-equivalent per visited amplitude, dense `k`-target ops cost
/// `4^k` per `2^k`-block, and controls shrink the visited subspace.
fn sweep_cost(seg: &Segment, len: usize) -> usize {
    let c = seg.controls.len();
    match &seg.body {
        // Phase-shift-class diagonals (unit leading entry, one target) only
        // touch the target-bit-set half of the subspace; general diagonals
        // visit every control-satisfied amplitude once.  Multi-target tables
        // (the DiagonalK kernel) pay a per-amplitude bit-gather on top of
        // the multiply, so they are costed at twice the single-bit kernels.
        Body::Diag(d) if seg.targets.len() == 1 && d[0] == ONE => len >> (c + 1),
        Body::Diag(_) if seg.targets.len() == 1 => len >> c,
        Body::Diag(_) => (len >> c).saturating_mul(2),
        Body::Dense(_) => {
            let k = seg.targets.len();
            let unit = match seg.pristine.as_ref().map(|op| &op.gate) {
                // Permutation kernels move amplitudes without arithmetic.
                Some(Gate::X) | Some(Gate::Swap) => 1,
                // The generic k ≥ 2 kernel pays a gather/scatter and strided
                // access on top of its 4^k multiplies, roughly doubling its
                // per-multiply cost next to the contiguous single-qubit
                // slice path (measured in `bench_gate_fusion`).
                _ if k >= 2 => 2 << (2 * k),
                _ => 4,
            };
            ((len >> c) >> k).max(1).saturating_mul(unit)
        }
    }
}

/// True when the two segments are guaranteed to commute: disjoint supports
/// (controls included), or both diagonal in the computational basis.
fn commutes(a: &Segment, b: &Segment) -> bool {
    if matches!(a.body, Body::Diag(_)) && matches!(b.body, Body::Diag(_)) {
        return true;
    }
    let sa = union_sorted(&a.controls, &a.targets);
    let sb = union_sorted(&b.controls, &b.targets);
    disjoint(&sa, &sb)
}

/// Emit a segment back as an operation.
fn emit(seg: Segment) -> Operation {
    if let Some(op) = seg.pristine {
        return op;
    }
    let matrix = dense_of(&seg);
    Operation::new(Gate::Unitary(matrix), seg.targets, seg.controls)
}

/// Run the fusion/diagonal-merging pass, returning the rewritten circuit.
///
/// The output implements the same unitary (up to floating-point roundoff in
/// the fused matrix products, ≲ 1e-13 for realistic depths) on the same
/// register width, with a shorter — never longer — operation list.
pub fn optimize_circuit(circuit: &Circuit, opts: &FusionOptions) -> Circuit {
    optimize_circuit_for(circuit, circuit.num_qubits(), opts)
}

/// [`optimize_circuit`] with the width of the register the circuit will
/// actually run on (≥ the circuit's own width).  The cost gate prices sweeps
/// at that width, so a small circuit compiled for a big register keeps its
/// cheap structured sweeps instead of densifying.
pub fn optimize_circuit_for(circuit: &Circuit, num_qubits: usize, opts: &FusionOptions) -> Circuit {
    assert!(
        circuit.num_qubits() <= num_qubits,
        "circuit needs {} qubits, register has {}",
        circuit.num_qubits(),
        num_qubits
    );
    let len = 1usize << num_qubits;
    let mut out: Vec<Segment> = Vec::new();
    'ops: for op in circuit.operations() {
        let Some(seg) = segment_of(op) else {
            continue; // identity
        };
        let lo = out.len().saturating_sub(opts.lookback.max(1));
        for j in (lo..out.len()).rev() {
            if let Some(fused) = try_fuse(&out[j], &seg, opts) {
                match simplify(fused) {
                    None => {
                        out.remove(j); // the pair cancelled to the identity
                        continue 'ops;
                    }
                    Some(f) => {
                        // Accept only when the fused sweep is no costlier
                        // than the two sweeps it replaces (plus the saved
                        // per-op overhead); otherwise keep scanning — a
                        // cheaper partner may sit behind a commuting segment.
                        let split = sweep_cost(&out[j], len)
                            .saturating_add(sweep_cost(&seg, len))
                            .saturating_add(opts.op_overhead_cost);
                        if sweep_cost(&f, len) <= split {
                            out[j] = f;
                            continue 'ops;
                        }
                    }
                }
            }
            if !commutes(&out[j], &seg) {
                break;
            }
        }
        out.push(seg);
    }
    let mut fused = Circuit::new(circuit.num_qubits());
    for seg in out {
        fused.push(emit(seg));
    }
    fused
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;

    fn assert_equivalent(raw: &Circuit, opts: &FusionOptions) -> Circuit {
        let fused = optimize_circuit(raw, opts);
        for col in 0..1usize << raw.num_qubits() {
            let mut a = StateVector::basis_state(raw.num_qubits(), col);
            a.apply_circuit(raw);
            let mut b = StateVector::basis_state(raw.num_qubits(), col);
            b.apply_circuit(&fused);
            let diff: f64 = a
                .amplitudes()
                .iter()
                .zip(b.amplitudes())
                .map(|(x, y)| (x - y).norm())
                .fold(0.0, f64::max);
            assert!(diff < 1e-12, "column {col} deviates by {diff}");
        }
        fused
    }

    #[test]
    fn single_qubit_rotation_chain_fuses_to_one_op() {
        let mut c = Circuit::new(2);
        c.h(0).rx(0, 0.3).ry(0, -1.1).rz(0, 0.7).h(0);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn diagonal_chain_merges_across_qubits_and_controls() {
        let mut c = Circuit::new(3);
        c.rz(0, 0.4).t(1).cphase(0, 2, 0.9).z(2).crz(2, 1, -0.5);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1, "all-diagonal circuit must merge fully");
    }

    #[test]
    fn x_conjugation_pairs_cancel() {
        let mut c = Circuit::new(2);
        c.x(1).phase(1, 0.8).x(1);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        // X·P(φ)·X = diag(e^{iφ}, 1): one diagonal op.
        assert_eq!(fused.len(), 1);
        let mut cancel = Circuit::new(1);
        cancel.x(0).x(0);
        assert!(optimize_circuit(&cancel, &FusionOptions::default()).is_empty());
    }

    #[test]
    fn matching_control_masks_fuse_mismatched_dense_ops_do_not() {
        let mut c = Circuit::new(3);
        c.controlled_gate(Gate::X, &[0], &[2])
            .controlled_gate(Gate::Ry(0.4), &[0], &[2])
            .controlled_gate(Gate::H, &[0], &[1]);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        // CX/CRy share controls {2} and fuse; the {1}-controlled H does not.
        assert_eq!(fused.len(), 2);
        assert_eq!(fused.operations()[0].controls, vec![2]);
    }

    #[test]
    fn commuting_gates_are_hopped_over() {
        let mut c = Circuit::new(4);
        c.ry(0, 0.3).h(2).cx(2, 3).ry(0, -0.3);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        // The two Ry(±0.3) cancel through the disjoint h/cx in between.
        assert_eq!(fused.len(), 2);
    }

    #[test]
    fn nested_targets_fuse_beyond_the_dense_cap() {
        // A 4-target dense op (beyond K = 3) still absorbs single-qubit ops
        // on its own support.
        let mut inner = Circuit::new(4);
        inner.h(0).cx(0, 1).cx(1, 2).cx(2, 3).ry(3, 0.3);
        let u = crate::unitary::circuit_unitary(&inner);
        let mut c = Circuit::new(4);
        c.rz(1, 0.7);
        c.gate(Gate::Unitary(u), &[0, 1, 2, 3]);
        c.phase(2, -0.4).x(0);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn identity_gates_are_dropped() {
        let mut c = Circuit::new(2);
        c.gate(Gate::I, &[0])
            .controlled_gate(Gate::I, &[1], &[0])
            .h(1);
        let fused = assert_equivalent(&c, &FusionOptions::default());
        assert_eq!(fused.len(), 1);
    }

    #[test]
    fn unsorted_targets_are_canonicalised() {
        // SWAP with targets given in descending order must still fuse
        // correctly with ops on its support.
        let mut c = Circuit::new(3);
        c.gate(Gate::Swap, &[2, 0]).h(0).h(2);
        assert_equivalent(&c, &FusionOptions::default());
    }

    #[test]
    fn lookback_zero_still_fuses_adjacent_ops() {
        let opts = FusionOptions {
            lookback: 0,
            ..Default::default()
        };
        let mut c = Circuit::new(1);
        c.rz(0, 0.1).rz(0, 0.2);
        assert_eq!(assert_equivalent(&c, &opts).len(), 1);
    }

    #[test]
    fn costly_densification_is_rejected_on_large_registers() {
        // Three H's on distinct qubits of a big register: densifying them
        // into one 3-qubit generic block (64 multiplies per 8 amplitudes)
        // costs more arithmetic than three pair sweeps, so above the
        // overhead break-even the pass must leave them alone — while the
        // same circuit on a small register fuses fully.
        let build = |n: usize| {
            let mut c = Circuit::new(n);
            c.h(0).h(1).h(2);
            c
        };
        let opts = FusionOptions::default();
        // The generic k >= 2 kernel is costed at twice its multiply count
        // (gather/scatter overhead), so none of the cross-qubit
        // densifications pay off on a big register.
        let large = optimize_circuit(&build(14), &opts);
        assert_eq!(large.len(), 3, "no densification at 14 qubits");
        let small = assert_equivalent(&build(3), &opts);
        assert_eq!(small.len(), 1, "full fusion on a 3-qubit register");
        // Equal-target fusion is cost-neutral and must happen at any size.
        let mut pair = Circuit::new(14);
        pair.ry(5, 0.3).rx(5, -0.8);
        assert_eq!(optimize_circuit(&pair, &opts).len(), 1);
        // A small circuit compiled for a big register must be priced at the
        // *register* width, not its own width.
        let widened = optimize_circuit_for(&build(3), 14, &opts);
        assert_eq!(widened.len(), 3, "no densification when run on 14 qubits");
    }

    #[test]
    fn stats_ratios() {
        let stats = CircuitStats {
            raw_ops: 10,
            fused_ops: 4,
            raw_sweep_work: 100,
            fused_sweep_work: 50,
        };
        assert!((stats.op_reduction() - 2.5).abs() < 1e-15);
        assert!((stats.work_reduction() - 2.0).abs() < 1e-15);
        let empty = CircuitStats {
            raw_ops: 0,
            fused_ops: 0,
            raw_sweep_work: 0,
            fused_sweep_work: 0,
        };
        assert_eq!(empty.op_reduction(), 1.0);
    }
}
