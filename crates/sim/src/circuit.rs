//! Quantum circuit intermediate representation.
//!
//! A [`Circuit`] is an ordered list of [`Operation`]s (gate + target qubits +
//! control qubits) on a fixed-width register.  Circuits compose (`append`),
//! invert (`adjoint`) and can be promoted to controlled circuits — the three
//! transformations the QSVT construction of Eqs. (2)–(3) of the paper needs:
//! it alternates the block-encoding `U`, its adjoint `U†`, and
//! projector-controlled phase rotations built from controlled gates.
//!
//! Qubit convention: qubit `q` is bit `q` of the basis-state index
//! (little-endian), i.e. basis state `|q_{n-1} … q_1 q_0⟩` has index
//! `Σ q_i 2^i`.

use crate::gate::Gate;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A gate placed on specific target and control qubits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    /// The gate applied to the targets.
    pub gate: Gate,
    /// Target qubits (length must equal `gate.arity()`).
    pub targets: Vec<usize>,
    /// Control qubits (the gate acts only on the subspace where all controls
    /// are |1⟩); must be disjoint from the targets.
    pub controls: Vec<usize>,
}

impl Operation {
    /// Build an operation, validating arity and target/control disjointness.
    pub fn new(gate: Gate, targets: Vec<usize>, controls: Vec<usize>) -> Self {
        assert_eq!(
            gate.arity(),
            targets.len(),
            "gate {} expects {} targets, got {}",
            gate.name(),
            gate.arity(),
            targets.len()
        );
        let mut all: Vec<usize> = targets.iter().chain(controls.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(
            all.len(),
            targets.len() + controls.len(),
            "targets and controls must be distinct qubits"
        );
        Operation {
            gate,
            targets,
            controls,
        }
    }

    /// Highest qubit index used by the operation.
    pub fn max_qubit(&self) -> usize {
        self.targets
            .iter()
            .chain(self.controls.iter())
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// All qubits touched by the operation.
    pub fn qubits(&self) -> Vec<usize> {
        self.targets
            .iter()
            .chain(self.controls.iter())
            .copied()
            .collect()
    }
}

/// An ordered sequence of operations on `num_qubits` qubits.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
}

// Deserialize is hand-written (Serialize is derived) so a decoded circuit
// re-establishes every invariant [`Circuit::push`] and [`Operation::new`]
// enforce — arity, target/control disjointness, register bounds, and
// well-formed `Gate::Unitary` dimensions.  A cache entry that decodes but
// violates an invariant becomes a decode *error* (treated as a cache miss
// upstream), never a malformed circuit that panics later.
impl<'de> serde::Deserialize<'de> for Circuit {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::DeError> {
        let num_qubits = usize::deserialize(value.field("Circuit", "num_qubits")?)?;
        let ops = Vec::<Operation>::deserialize(value.field("Circuit", "ops")?)?;
        for (i, op) in ops.iter().enumerate() {
            let fail = |why: &str| {
                Err(serde::DeError::new(format!(
                    "Circuit: operation {i} ({}) {why}",
                    op.gate.name()
                )))
            };
            if let Gate::Unitary(m) = &op.gate {
                let dim = m.nrows();
                if m.ncols() != dim || !dim.is_power_of_two() || dim < 2 {
                    return fail("has a non-2^k-square unitary");
                }
            }
            if op.gate.arity() != op.targets.len() {
                return fail("has the wrong target count");
            }
            let mut all: Vec<usize> = op
                .targets
                .iter()
                .chain(op.controls.iter())
                .copied()
                .collect();
            all.sort_unstable();
            all.dedup();
            if all.len() != op.targets.len() + op.controls.len() {
                return fail("reuses a qubit as target and control");
            }
            if op.max_qubit() >= num_qubits {
                return fail("touches a qubit outside the register");
            }
        }
        Ok(Circuit { num_qubits, ops })
    }
}

impl Circuit {
    /// Create an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            ops: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The operations in execution order.
    pub fn operations(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when the circuit contains no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Append a raw operation.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        assert!(
            op.max_qubit() < self.num_qubits,
            "operation touches qubit {} but the circuit has only {} qubits",
            op.max_qubit(),
            self.num_qubits
        );
        self.ops.push(op);
        self
    }

    /// Append a gate on the given targets with no controls.
    pub fn gate(&mut self, gate: Gate, targets: &[usize]) -> &mut Self {
        self.push(Operation::new(gate, targets.to_vec(), vec![]))
    }

    /// Append a controlled gate.
    pub fn controlled_gate(
        &mut self,
        gate: Gate,
        targets: &[usize],
        controls: &[usize],
    ) -> &mut Self {
        self.push(Operation::new(gate, targets.to_vec(), controls.to_vec()))
    }

    // ---- convenience builders for the common gates ----

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::X, &[q])
    }
    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Y, &[q])
    }
    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::Z, &[q])
    }
    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::H, &[q])
    }
    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::S, &[q])
    }
    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.gate(Gate::T, &[q])
    }
    /// X-rotation by `theta` on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rx(theta), &[q])
    }
    /// Y-rotation by `theta` on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Ry(theta), &[q])
    }
    /// Z-rotation by `theta` on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.gate(Gate::Rz(theta), &[q])
    }
    /// Phase gate by `phi` on `q`.
    pub fn phase(&mut self, q: usize, phi: f64) -> &mut Self {
        self.gate(Gate::Phase(phi), &[q])
    }
    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.controlled_gate(Gate::X, &[t], &[c])
    }
    /// Controlled-Z between `c` and `t`.
    pub fn cz(&mut self, c: usize, t: usize) -> &mut Self {
        self.controlled_gate(Gate::Z, &[t], &[c])
    }
    /// Toffoli (CCX) with controls `c1`, `c2` and target `t`.
    pub fn ccx(&mut self, c1: usize, c2: usize, t: usize) -> &mut Self {
        self.controlled_gate(Gate::X, &[t], &[c1, c2])
    }
    /// Multi-controlled X.
    pub fn mcx(&mut self, controls: &[usize], t: usize) -> &mut Self {
        self.controlled_gate(Gate::X, &[t], controls)
    }
    /// Controlled Y-rotation.
    pub fn cry(&mut self, c: usize, t: usize, theta: f64) -> &mut Self {
        self.controlled_gate(Gate::Ry(theta), &[t], &[c])
    }
    /// Controlled Z-rotation.
    pub fn crz(&mut self, c: usize, t: usize, theta: f64) -> &mut Self {
        self.controlled_gate(Gate::Rz(theta), &[t], &[c])
    }
    /// Controlled phase.
    pub fn cphase(&mut self, c: usize, t: usize, phi: f64) -> &mut Self {
        self.controlled_gate(Gate::Phase(phi), &[t], &[c])
    }
    /// SWAP of qubits `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.gate(Gate::Swap, &[a, b])
    }

    /// Append all operations of another circuit (must fit in this register).
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.ops.extend(other.ops.iter().cloned());
        self
    }

    /// Move another circuit's operations onto the end of this one.  Same
    /// contract as [`Circuit::append`], but consuming: the gate payloads
    /// (notably `Gate::Unitary` matrices) transfer without being cloned,
    /// which matters when appending block-encoding-heavy QSVT sequences.
    pub fn append_owned(&mut self, other: Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "cannot append a {}-qubit circuit to a {}-qubit circuit",
            other.num_qubits,
            self.num_qubits
        );
        self.ops.extend(other.ops);
        self
    }

    /// The adjoint (inverse) circuit: reversed order, each gate replaced by its
    /// adjoint, controls preserved.
    pub fn adjoint(&self) -> Circuit {
        let ops = self
            .ops
            .iter()
            .rev()
            .map(|op| Operation {
                gate: op.gate.adjoint(),
                targets: op.targets.clone(),
                controls: op.controls.clone(),
            })
            .collect();
        Circuit {
            num_qubits: self.num_qubits,
            ops,
        }
    }

    /// A copy of the circuit in which every operation gains the given extra
    /// control qubits (which must not already be used as targets).
    pub fn controlled(&self, extra_controls: &[usize]) -> Circuit {
        let ops = self
            .ops
            .iter()
            .map(|op| {
                let mut controls = op.controls.clone();
                controls.extend_from_slice(extra_controls);
                Operation::new(op.gate.clone(), op.targets.clone(), controls)
            })
            .collect();
        let max_extra = extra_controls
            .iter()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        Circuit {
            num_qubits: self.num_qubits.max(max_extra),
            ops,
        }
    }

    /// Consuming variant of [`Circuit::controlled`]: adds the extra controls
    /// to every operation in place, without cloning gate payloads.
    pub fn into_controlled(mut self, extra_controls: &[usize]) -> Circuit {
        for op in &mut self.ops {
            for &c in extra_controls {
                assert!(
                    !op.targets.contains(&c) && !op.controls.contains(&c),
                    "control qubit {c} collides with an existing target/control"
                );
            }
            op.controls.extend_from_slice(extra_controls);
        }
        let max_extra = extra_controls
            .iter()
            .copied()
            .max()
            .map(|m| m + 1)
            .unwrap_or(0);
        self.num_qubits = self.num_qubits.max(max_extra);
        self
    }

    /// A copy of the circuit with every qubit index remapped through `map`
    /// (e.g. to embed a sub-register circuit into a larger register).
    pub fn remapped(&self, new_num_qubits: usize, map: impl Fn(usize) -> usize) -> Circuit {
        let ops = self
            .ops
            .iter()
            .map(|op| {
                Operation::new(
                    op.gate.clone(),
                    op.targets.iter().map(|&q| map(q)).collect(),
                    op.controls.iter().map(|&q| map(q)).collect(),
                )
            })
            .collect();
        let circ = Circuit {
            num_qubits: new_num_qubits,
            ops,
        };
        for op in &circ.ops {
            assert!(
                op.max_qubit() < new_num_qubits,
                "remapped operation out of range"
            );
        }
        circ
    }

    /// Total number of gates, counting a controlled gate as one operation.
    pub fn gate_count(&self) -> usize {
        self.ops.len()
    }

    /// Gate counts grouped by gate mnemonic (controls appear as a `c`-prefix
    /// per control, e.g. a Toffoli is counted under "ccx").
    pub fn gate_histogram(&self) -> HashMap<String, usize> {
        let mut hist = HashMap::new();
        for op in &self.ops {
            let name = format!("{}{}", "c".repeat(op.controls.len()), op.gate.name());
            *hist.entry(name).or_insert(0) += 1;
        }
        hist
    }

    /// Circuit depth: the length of the longest chain of operations sharing a
    /// qubit (greedy as-soon-as-possible scheduling).
    pub fn depth(&self) -> usize {
        let mut qubit_depth = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for op in &self.ops {
            let start = op
                .qubits()
                .into_iter()
                .map(|q| qubit_depth[q])
                .max()
                .unwrap_or(0);
            let end = start + 1;
            for q in op.qubits() {
                qubit_depth[q] = end;
            }
            depth = depth.max(end);
        }
        depth
    }

    /// Number of two-or-more-qubit operations (entangling gates).
    pub fn entangling_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| op.targets.len() + op.controls.len() >= 2)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_counts() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).rz(2, 0.5).swap(0, 2);
        assert_eq!(c.gate_count(), 5);
        assert_eq!(c.entangling_gate_count(), 3);
        let hist = c.gate_histogram();
        assert_eq!(hist["h"], 1);
        assert_eq!(hist["cx"], 1);
        assert_eq!(hist["ccx"], 1);
        assert_eq!(hist["rz"], 1);
        assert_eq!(hist["swap"], 1);
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        // Layer 1: H(0), H(1), H(2) — all parallel.
        c.h(0).h(1).h(2);
        assert_eq!(c.depth(), 1);
        // Layer 2: CX(0,1) blocks qubits 0 and 1.
        c.cx(0, 1);
        assert_eq!(c.depth(), 2);
        // X(2) still fits in layer 2.
        c.x(2);
        assert_eq!(c.depth(), 2);
        // CX(1,2) must wait for both.
        c.cx(1, 2);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn adjoint_reverses_and_inverts() {
        let mut c = Circuit::new(2);
        c.h(0).t(1).cx(0, 1).rz(0, 0.7);
        let adj = c.adjoint();
        assert_eq!(adj.len(), 4);
        assert_eq!(adj.operations()[0].gate, Gate::Rz(-0.7));
        assert_eq!(adj.operations()[3].gate, Gate::H);
        assert_eq!(adj.operations()[1].gate, Gate::X); // cx is self-adjoint
    }

    #[test]
    fn controlled_circuit_adds_controls() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let cc = c.controlled(&[2]);
        assert_eq!(cc.operations()[0].controls, vec![2]);
        assert_eq!(cc.operations()[1].controls, vec![0, 2]);
        assert_eq!(cc.num_qubits(), 3);
    }

    #[test]
    fn remapping_moves_qubits() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let shifted = c.remapped(4, |q| q + 2);
        assert_eq!(shifted.operations()[0].targets, vec![2]);
        assert_eq!(shifted.operations()[1].targets, vec![3]);
        assert_eq!(shifted.operations()[1].controls, vec![2]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_qubit_rejected() {
        let mut c = Circuit::new(2);
        c.x(5);
    }

    #[test]
    #[should_panic]
    fn overlapping_target_and_control_rejected() {
        let _ = Operation::new(Gate::X, vec![1], vec![1]);
    }

    #[test]
    fn append_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cx(0, 1);
        a.append(&b);
        assert_eq!(a.len(), 2);
    }
}
