//! Deterministic fault injection for the simulator.
//!
//! The paper sells Algorithm 2 as the *robust* way to use a low-precision
//! quantum solver: iterative refinement converges even when each inner solve
//! is only ε_l-accurate (Theorem III.1).  Exercising that claim requires a
//! simulator that can *misbehave on demand* — noisy amplitudes, a transient
//! hardware failure on the k-th run, corrupted readout — and do so
//! **reproducibly**, so a failing recovery path can be replayed from a seed.
//!
//! This module provides that layer:
//!
//! * [`FaultPlan`] — a declarative, seedable description of every fault to
//!   inject: Gaussian amplitude perturbation of configurable strength,
//!   scheduled transient failures (the k-th run returns an injected error or
//!   a NaN-poisoned register), and readout sign corruption that composes with
//!   the finite-shot sampling path of `qls_core`.
//! * [`FaultInjector`] — the stateful executor of a plan: it owns a ChaCha
//!   stream seeded from the plan, counts device runs, applies the scheduled
//!   faults and records every action in an event log.  Same seed + same plan
//!   + same call sequence ⇒ bit-identical fault history, every time.
//!
//! The injector attaches to [`crate::QuantumExecutor`] (see
//! [`QuantumExecutor::attach_fault_injector`]) and is consulted only by the
//! *checked* execution entry points (`run_in_place_checked`,
//! `run_batch_checked`); the plain `run`/`run_in_place`/`run_batch` paths are
//! untouched, so the no-fault configuration stays bit-identical to a build
//! without this module — the house equivalence-oracle pattern
//! (`kernels::reference`, `OptLevel::None`).
//!
//! [`QuantumExecutor::attach_fault_injector`]: crate::QuantumExecutor::attach_fault_injector

use crate::state::StateVector;
use num_complex::Complex64;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::{Arc, Mutex, PoisonError};

/// What a scheduled transient failure does when its run comes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransientKind {
    /// The run reports a hardware error: the checked execution returns
    /// [`FaultError::InjectedTransient`] instead of a state.
    InjectedError,
    /// The run silently corrupts the register: every amplitude becomes NaN.
    /// Nothing errors at the device boundary — upper layers must *detect*
    /// the poison through their finiteness guards.
    NanPoison,
}

/// A transient failure scheduled for one specific device run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransientFault {
    /// 0-based index of the device run this fault fires on (each checked
    /// execution of a register ticks the counter once).
    pub run_index: usize,
    /// What happens on that run.
    pub kind: TransientKind,
}

/// A declarative, seedable description of every fault to inject.
///
/// The plan is plain data: build it once, hand copies to tests, benches and
/// examples, and every [`FaultInjector`] constructed from it replays the
/// exact same degradation sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the injector's private ChaCha stream (independent of the
    /// solver's own RNG, so faults do not perturb shot sampling draws).
    pub seed: u64,
    /// Standard deviation of the Gaussian perturbation added to every
    /// amplitude (real and imaginary part independently) after each run.
    /// `0.0` disables amplitude noise and consumes no randomness.
    pub amplitude_sigma: f64,
    /// Scheduled transient failures, matched against the run counter.
    pub transients: Vec<TransientFault>,
    /// Per-coordinate probability of a sign flip in the sampled readout
    /// (composes with the finite-shot `sample_direction` path: magnitudes
    /// come from shot counts, and this corrupts the recovered signs).
    /// `0.0` disables readout corruption and consumes no randomness.
    pub readout_flip_probability: f64,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            amplitude_sigma: 0.0,
            transients: Vec::new(),
            readout_flip_probability: 0.0,
        }
    }

    /// Add Gaussian amplitude noise of strength `sigma` to every run.
    pub fn with_amplitude_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise strength must be non-negative");
        self.amplitude_sigma = sigma;
        self
    }

    /// Schedule a transient failure on the `run_index`-th device run.
    pub fn with_transient(mut self, run_index: usize, kind: TransientKind) -> Self {
        self.transients.push(TransientFault { run_index, kind });
        self
    }

    /// Corrupt the sampled readout: flip each coordinate's sign with
    /// probability `p`.
    pub fn with_readout_sign_flips(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        self.readout_flip_probability = p;
        self
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.amplitude_sigma == 0.0
            && self.transients.is_empty()
            && self.readout_flip_probability == 0.0
    }
}

/// One recorded fault application (the injector's audit log).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// Gaussian amplitude noise of the recorded strength hit this run.
    AmplitudeNoise { run_index: usize, sigma: f64 },
    /// A scheduled transient fired on this run.
    Transient {
        run_index: usize,
        kind: TransientKind,
    },
    /// `flips` coordinates of a sampled readout had their sign flipped.
    ReadoutCorruption { run_index: usize, flips: usize },
}

/// Error surfaced by an injected transient failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultError {
    /// The `run_index`-th device run was scheduled to fail.
    InjectedTransient {
        /// Which run reported the failure.
        run_index: usize,
    },
}

impl std::fmt::Display for FaultError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultError::InjectedTransient { run_index } => {
                write!(f, "injected transient failure on device run {run_index}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// Shared handle to a [`FaultInjector`], cloneable across the executor, the
/// QSVT inverter and the solver readout path so all of them tick the same
/// run counter and draw from the same deterministic stream.
pub type SharedFaultInjector = Arc<Mutex<FaultInjector>>;

/// The stateful executor of a [`FaultPlan`].
///
/// Deterministic by construction: the ChaCha stream is seeded from the plan,
/// faults are applied in call order, and the only inputs are the plan and
/// the sequence of calls — so identical (seed, plan, call sequence) triples
/// produce identical perturbations, identical scheduled failures and an
/// identical [`FaultInjector::events`] log.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: ChaCha8Rng,
    next_run: usize,
    events: Vec<FaultEvent>,
}

impl FaultInjector {
    /// Build an injector executing `plan` from its seed.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = ChaCha8Rng::seed_from_u64(plan.seed);
        FaultInjector {
            plan,
            rng,
            next_run: 0,
            events: Vec::new(),
        }
    }

    /// Build an injector wrapped in the [`SharedFaultInjector`] handle that
    /// [`crate::QuantumExecutor::attach_fault_injector`] and the solver
    /// layers accept.
    pub fn shared(plan: FaultPlan) -> SharedFaultInjector {
        Arc::new(Mutex::new(FaultInjector::new(plan)))
    }

    /// The plan this injector executes.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Number of device runs seen so far.
    pub fn runs(&self) -> usize {
        self.next_run
    }

    /// Everything injected so far, in order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Rewind to the initial state (same seed, run counter 0, empty log) so
    /// the exact fault sequence can be replayed.
    pub fn reset(&mut self) {
        self.rng = ChaCha8Rng::seed_from_u64(self.plan.seed);
        self.next_run = 0;
        self.events.clear();
    }

    /// One Gaussian draw (Box–Muller; two uniform draws per call, so the
    /// stream advances deterministically).
    fn gaussian(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    fn scheduled_transient(&self, run: usize) -> Option<TransientKind> {
        self.plan
            .transients
            .iter()
            .find(|t| t.run_index == run)
            .map(|t| t.kind)
    }

    /// Apply the plan to a full simulator register after one device run:
    /// amplitude noise first, then any transient scheduled for this run.
    /// Ticks the run counter exactly once.
    pub fn apply_to_state(&mut self, state: &mut StateVector) -> Result<(), FaultError> {
        let run = self.next_run;
        self.next_run += 1;
        let sigma = self.plan.amplitude_sigma;
        if sigma > 0.0 {
            for amp in state.amplitudes_mut() {
                let noise = Complex64::new(sigma * self.gaussian(), sigma * self.gaussian());
                *amp += noise;
            }
            self.events.push(FaultEvent::AmplitudeNoise {
                run_index: run,
                sigma,
            });
        }
        match self.scheduled_transient(run) {
            Some(TransientKind::NanPoison) => {
                for amp in state.amplitudes_mut() {
                    *amp = Complex64::new(f64::NAN, f64::NAN);
                }
                self.events.push(FaultEvent::Transient {
                    run_index: run,
                    kind: TransientKind::NanPoison,
                });
                Ok(())
            }
            Some(TransientKind::InjectedError) => {
                self.events.push(FaultEvent::Transient {
                    run_index: run,
                    kind: TransientKind::InjectedError,
                });
                Err(FaultError::InjectedTransient { run_index: run })
            }
            None => Ok(()),
        }
    }

    /// Apply the plan to a real output direction — the emulation-mode
    /// equivalent of [`FaultInjector::apply_to_state`] (`QsvtMode::Emulation`
    /// never materialises a register, but models the same device run).
    /// Ticks the run counter exactly once.
    pub fn apply_to_direction(&mut self, direction: &mut [f64]) -> Result<(), FaultError> {
        let run = self.next_run;
        self.next_run += 1;
        let sigma = self.plan.amplitude_sigma;
        if sigma > 0.0 {
            for v in direction.iter_mut() {
                *v += sigma * self.gaussian();
            }
            self.events.push(FaultEvent::AmplitudeNoise {
                run_index: run,
                sigma,
            });
        }
        match self.scheduled_transient(run) {
            Some(TransientKind::NanPoison) => {
                for v in direction.iter_mut() {
                    *v = f64::NAN;
                }
                self.events.push(FaultEvent::Transient {
                    run_index: run,
                    kind: TransientKind::NanPoison,
                });
                Ok(())
            }
            Some(TransientKind::InjectedError) => {
                self.events.push(FaultEvent::Transient {
                    run_index: run,
                    kind: TransientKind::InjectedError,
                });
                Err(FaultError::InjectedTransient { run_index: run })
            }
            None => Ok(()),
        }
    }

    /// Corrupt a sampled readout in place: flip each coordinate's sign with
    /// the plan's probability.  Does **not** tick the run counter (readout
    /// is part of the same device run as the execution it follows) and
    /// consumes no randomness when corruption is disabled.
    pub fn corrupt_readout(&mut self, readout: &mut [f64]) {
        let p = self.plan.readout_flip_probability;
        if p <= 0.0 {
            return;
        }
        let mut flips = 0usize;
        for v in readout.iter_mut() {
            if self.rng.gen_bool(p) {
                *v = -*v;
                flips += 1;
            }
        }
        if flips > 0 {
            self.events.push(FaultEvent::ReadoutCorruption {
                // The readout belongs to the run that just completed.
                run_index: self.next_run.saturating_sub(1),
                flips,
            });
        }
    }
}

/// Lock a shared injector, recovering from a poisoned mutex (the injector's
/// state stays usable — it holds no invariants a panic could break).
pub fn lock_injector(inj: &SharedFaultInjector) -> std::sync::MutexGuard<'_, FaultInjector> {
    inj.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_a_no_op() {
        let mut inj = FaultInjector::new(FaultPlan::new(1));
        assert!(inj.plan().is_empty());
        let mut state = StateVector::basis_state(2, 1);
        let before = state.amplitudes().to_vec();
        inj.apply_to_state(&mut state).unwrap();
        assert_eq!(state.amplitudes(), &before[..]);
        let mut dir = [0.6, -0.8];
        inj.apply_to_direction(&mut dir).unwrap();
        assert_eq!(dir, [0.6, -0.8]);
        inj.corrupt_readout(&mut dir);
        assert_eq!(dir, [0.6, -0.8]);
        assert_eq!(inj.runs(), 2);
        assert!(inj.events().is_empty());
    }

    #[test]
    fn amplitude_noise_is_deterministic_per_seed() {
        let plan = FaultPlan::new(42).with_amplitude_noise(0.01);
        let run = |plan: FaultPlan| {
            let mut inj = FaultInjector::new(plan);
            let mut state = StateVector::basis_state(3, 5);
            inj.apply_to_state(&mut state).unwrap();
            state.amplitudes().to_vec()
        };
        assert_eq!(run(plan.clone()), run(plan.clone()));
        // A different seed perturbs differently.
        let other = run(FaultPlan::new(43).with_amplitude_noise(0.01));
        assert_ne!(run(plan), other);
    }

    #[test]
    fn transient_fires_on_the_scheduled_run_only() {
        let plan = FaultPlan::new(7).with_transient(1, TransientKind::InjectedError);
        let mut inj = FaultInjector::new(plan);
        let mut state = StateVector::basis_state(1, 0);
        assert!(inj.apply_to_state(&mut state).is_ok());
        assert_eq!(
            inj.apply_to_state(&mut state),
            Err(FaultError::InjectedTransient { run_index: 1 })
        );
        assert!(inj.apply_to_state(&mut state).is_ok());
        assert_eq!(inj.runs(), 3);
    }

    #[test]
    fn nan_poison_corrupts_without_erroring() {
        let plan = FaultPlan::new(7).with_transient(0, TransientKind::NanPoison);
        let mut inj = FaultInjector::new(plan);
        let mut dir = [0.6, -0.8];
        assert!(inj.apply_to_direction(&mut dir).is_ok());
        assert!(dir.iter().all(|v| v.is_nan()));
    }

    #[test]
    fn reset_replays_the_exact_stream() {
        let plan = FaultPlan::new(11)
            .with_amplitude_noise(0.05)
            .with_readout_sign_flips(0.3);
        let mut inj = FaultInjector::new(plan);
        let mut d1 = vec![0.5; 8];
        inj.apply_to_direction(&mut d1).unwrap();
        inj.corrupt_readout(&mut d1);
        let events1 = inj.events().to_vec();
        inj.reset();
        assert_eq!(inj.runs(), 0);
        let mut d2 = vec![0.5; 8];
        inj.apply_to_direction(&mut d2).unwrap();
        inj.corrupt_readout(&mut d2);
        assert_eq!(d1, d2);
        assert_eq!(events1, inj.events());
    }

    #[test]
    fn gaussian_noise_has_roughly_the_requested_scale() {
        let mut inj = FaultInjector::new(FaultPlan::new(3).with_amplitude_noise(0.1));
        let mut dir = vec![0.0; 4096];
        inj.apply_to_direction(&mut dir).unwrap();
        let mean: f64 = dir.iter().sum::<f64>() / dir.len() as f64;
        let var: f64 = dir.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / dir.len() as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var.sqrt() - 0.1).abs() < 0.01, "std {}", var.sqrt());
    }
}
