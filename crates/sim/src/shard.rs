//! Sharded statevector execution: the register split into `2^k` worker-owned
//! chunks, with pairwise shard exchanges for high-qubit gates.
//!
//! The flat engine ([`crate::kernels`]) tops out where one contiguous `Vec`
//! of `2^n` amplitudes stops fitting in cache/one allocation.  This module
//! splits the register at the **shard boundary** `m = n − k` into `2^k`
//! chunks of `2^m` amplitudes ([`ShardedState`]): shard `s` owns the
//! contiguous global indices `s·2^m .. (s+1)·2^m`, i.e. the low `m` qubits
//! are **shard-local** and the high `k` qubits select the shard.
//!
//! [`ShardedCircuit::compile`] turns an operation list into an execution
//! plan of three step kinds:
//!
//! 1. **Local** — every support qubit (targets *and* controls) is below the
//!    boundary.  The op is compiled once for an `m`-qubit register with the
//!    ordinary [`CompiledOp`] machinery and applied to each chunk unchanged
//!    — embarrassingly parallel across shards, reusing the specialized
//!    kernels *including their SIMD bodies*, because a compiled op's
//!    per-amplitude arithmetic does not depend on the buffer length (a
//!    longer buffer is just a larger register whose extra qubits the op
//!    treats as free).
//! 2. **Exchange** — some support qubit is global.  The classic distributed
//!    scheme: each global qubit `g` is paired with a free local qubit `l`,
//!    partner shards (differing in `g`'s shard-index bit) swap the halves
//!    of their chunks selected by bit `l`, every op of the round runs
//!    shard-locally with `g` and `l` transposed in its qubit list, and the
//!    halves swap back.  Consecutive ops share one round whenever the
//!    union of their global supports plus untouched local supports fits in
//!    `m` qubits, so one exchange round serves a whole run of high-qubit
//!    ops (with interleaved low ops riding along).
//! 3. **Flat** — an op's support is too wide for any exchange round
//!    (`|support| > m`).  The chunks are gathered into one flat register,
//!    the op runs there, and the result is scattered back.  Strictly a
//!    fallback: it is the degenerate all-to-all exchange.
//!
//! # Bit-identity with the flat oracle
//!
//! Per the house pattern, the flat register stays the equivalence oracle and
//! the sharded path is **bit-identical** to it (`==` on amplitudes, not
//! close-to): a [`CompiledOp`]'s control mask, fixed bits, and kernel body
//! derive from the operation alone, so applying the op compiled for `m`
//! qubits to each `2^m` chunk performs exactly the per-amplitude arithmetic
//! the flat sweep performs on the `2^n` register — same accumulation order
//! inside each shard-local sweep.  The exchange transposition preserves the
//! *order* of every op's target list, so the generic kernel's matrix-column
//! order and the diagonal kernel's bit-gather order are unchanged.  The
//! equivalence suite (`tests/shard_equivalence.rs`) asserts `==` at shard
//! counts 2/4/8 on random circuits with controls, fused and unfused.
//!
//! The fusion pass cooperates: [`FusionOptions::with_shard_boundary`]
//! (see [`crate::fuse`]) prices every candidate sweep with the exchange
//! traffic it would cost here, steering merged ops toward low-qubit support
//! and thereby minimizing exchange rounds.
//!
//! [`FusionOptions::with_shard_boundary`]: crate::fuse::FusionOptions::with_shard_boundary

use crate::circuit::{Circuit, Operation};
use crate::kernels::{note_circuit_compile, CompiledOp, PARALLEL_WORK_THRESHOLD};
use crate::state::StateVector;
use num_complex::Complex64;
use rayon::prelude::*;

/// One worker-owned chunk: `2^m` contiguous amplitudes plus the private
/// scratch buffer its generic-kernel sweeps reuse.
#[derive(Debug, Clone)]
struct Shard {
    amps: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

/// A `2^n`-amplitude register stored as `2^k` worker-owned chunks of
/// `2^m = 2^(n−k)` amplitudes (see the [module docs](self) for the layout).
#[derive(Debug, Clone)]
pub struct ShardedState {
    num_qubits: usize,
    shard_qubits: usize,
    shards: Vec<Shard>,
}

fn shard_qubits_for(num_qubits: usize, num_shards: usize) -> usize {
    assert!(
        num_shards.is_power_of_two(),
        "shard count must be a power of two, got {num_shards}"
    );
    let k = num_shards.trailing_zeros() as usize;
    assert!(
        k <= num_qubits,
        "cannot split a {num_qubits}-qubit register into {num_shards} shards"
    );
    k
}

impl ShardedState {
    /// The all-zeros basis state `|0…0⟩` split into `num_shards` chunks
    /// (a power of two, at most `2^num_qubits`).
    pub fn zero_state(num_qubits: usize, num_shards: usize) -> Self {
        let shard_qubits = shard_qubits_for(num_qubits, num_shards);
        let shard_len = 1usize << (num_qubits - shard_qubits);
        let mut shards = vec![
            Shard {
                amps: vec![Complex64::new(0.0, 0.0); shard_len],
                scratch: Vec::new(),
            };
            num_shards
        ];
        shards[0].amps[0] = Complex64::new(1.0, 0.0);
        ShardedState {
            num_qubits,
            shard_qubits,
            shards,
        }
    }

    /// Split a flat register into `num_shards` chunks (amplitudes copied
    /// verbatim: shard `s` takes the contiguous run `s·2^m .. (s+1)·2^m`).
    pub fn from_state(state: &StateVector, num_shards: usize) -> Self {
        let num_qubits = state.num_qubits();
        let shard_qubits = shard_qubits_for(num_qubits, num_shards);
        let shard_len = 1usize << (num_qubits - shard_qubits);
        let shards = state
            .amplitudes()
            .chunks(shard_len)
            .map(|chunk| Shard {
                amps: chunk.to_vec(),
                scratch: Vec::new(),
            })
            .collect();
        ShardedState {
            num_qubits,
            shard_qubits,
            shards,
        }
    }

    /// Gather the chunks back into a flat [`StateVector`] (bit-identical
    /// amplitudes, no renormalization).
    pub fn to_state(&self) -> StateVector {
        StateVector::from_amplitudes_unchecked(self.gather())
    }

    /// Consuming [`ShardedState::to_state`].
    pub fn into_state(self) -> StateVector {
        self.to_state()
    }

    /// Register width `n`.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of chunks `2^k`.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of shard-index qubits `k`.
    pub fn shard_qubits(&self) -> usize {
        self.shard_qubits
    }

    /// The shard boundary `m = n − k`: qubits below it are shard-local.
    pub fn local_qubits(&self) -> usize {
        self.num_qubits - self.shard_qubits
    }

    /// Amplitudes per chunk, `2^m`.
    pub fn shard_len(&self) -> usize {
        1usize << self.local_qubits()
    }

    /// Total amplitudes, `2^n`.
    pub fn len(&self) -> usize {
        1usize << self.num_qubits
    }

    /// True only for the (impossible) empty register — kept for clippy's
    /// `len`-without-`is_empty` convention.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Amplitude bytes owned by each worker (one chunk, scratch excluded).
    pub fn per_shard_bytes(&self) -> usize {
        self.shard_len() * std::mem::size_of::<Complex64>()
    }

    /// The amplitudes owned by shard `s` (global indices
    /// `s·2^m .. (s+1)·2^m`).
    pub fn shard_amplitudes(&self, s: usize) -> &[Complex64] {
        &self.shards[s].amps
    }

    /// The 2-norm of the full register, accumulated shard by shard.
    pub fn norm(&self) -> f64 {
        self.shards
            .iter()
            .map(|sh| sh.amps.iter().map(|a| a.norm_sqr()).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Probability that measuring qubit `q` yields 1, accumulated without
    /// gathering: for a global `q` the owning shards are summed whole, for a
    /// local `q` each shard sums its bit-set half.
    pub fn probability_of_one(&self, q: usize) -> f64 {
        assert!(q < self.num_qubits, "qubit {q} outside the register");
        let m = self.local_qubits();
        if q >= m {
            let gbit = 1usize << (q - m);
            self.shards
                .iter()
                .enumerate()
                .filter(|(s, _)| s & gbit != 0)
                .map(|(_, sh)| sh.amps.iter().map(|a| a.norm_sqr()).sum::<f64>())
                .sum()
        } else {
            let bit = 1usize << q;
            self.shards
                .iter()
                .map(|sh| {
                    sh.amps
                        .iter()
                        .enumerate()
                        .filter(|(j, _)| j & bit != 0)
                        .map(|(_, a)| a.norm_sqr())
                        .sum::<f64>()
                })
                .sum()
        }
    }

    fn gather(&self) -> Vec<Complex64> {
        let mut full = Vec::with_capacity(self.len());
        for sh in &self.shards {
            full.extend_from_slice(&sh.amps);
        }
        full
    }

    fn scatter(&mut self, full: &[Complex64]) {
        let shard_len = self.shard_len();
        for (sh, chunk) in self.shards.iter_mut().zip(full.chunks(shard_len)) {
            sh.amps.copy_from_slice(chunk);
        }
    }
}

/// One step of a sharded execution plan.
#[derive(Debug, Clone)]
enum Step {
    /// Ops whose whole support is shard-local, compiled for `m` qubits and
    /// applied to every chunk independently.
    Local(Vec<CompiledOp>),
    /// One exchange round: transpose each `(global, local)` qubit pair by
    /// swapping chunk halves between partner shards, run the ops (compiled
    /// for `m` qubits with the transpositions applied to their qubit
    /// lists), transpose back.
    Exchange {
        swaps: Vec<(usize, usize)>,
        ops: Vec<CompiledOp>,
    },
    /// Fallback for ops too wide for any exchange round: gather the flat
    /// register, apply, scatter.
    Flat(Vec<CompiledOp>),
}

/// A circuit compiled once into a sharded execution plan (see the
/// [module docs](self)); the sharded analogue of
/// [`CompiledCircuit`](crate::kernels::CompiledCircuit).
#[derive(Debug, Clone)]
pub struct ShardedCircuit {
    num_qubits: usize,
    shard_qubits: usize,
    steps: Vec<Step>,
    local_ops: usize,
    exchanged_ops: usize,
    flat_ops: usize,
}

impl ShardedCircuit {
    /// Compile `circuit` for an `num_qubits`-wide register split into
    /// `num_shards` chunks.  One compilation, observable through
    /// [`circuit_compile_count`](crate::kernels::circuit_compile_count)
    /// exactly like the flat compiler; runs never recompile.
    pub fn compile(circuit: &Circuit, num_qubits: usize, num_shards: usize) -> Self {
        assert!(
            circuit.num_qubits() <= num_qubits,
            "circuit needs {} qubits, register has {}",
            circuit.num_qubits(),
            num_qubits
        );
        let shard_qubits = shard_qubits_for(num_qubits, num_shards);
        let m = num_qubits - shard_qubits;
        note_circuit_compile();

        let mut steps: Vec<Step> = Vec::new();
        let mut local: Vec<CompiledOp> = Vec::new();
        let mut flat: Vec<CompiledOp> = Vec::new();
        // The open exchange batch: raw ops plus the union of their global
        // (high) and local (low) support qubits.
        let mut batch: Vec<Operation> = Vec::new();
        let mut batch_high: Vec<usize> = Vec::new();
        let mut batch_low: Vec<usize> = Vec::new();
        let mut counts = (0usize, 0usize, 0usize); // (local, exchanged, flat)

        for op in circuit.operations() {
            let support = sorted_union(&op.targets, &op.controls);
            let (low, high): (Vec<usize>, Vec<usize>) = support.iter().partition(|&&q| q < m);
            if !batch.is_empty() {
                // Extend the open round when the combined supports still
                // leave room for one partner qubit per global qubit.
                let high2 = sorted_union(&batch_high, &high);
                let low2 = sorted_union(&batch_low, &low);
                if high2.len() + low2.len() <= m {
                    batch.push(op.clone());
                    batch_high = high2;
                    batch_low = low2;
                    continue;
                }
                counts.1 += close_batch(&mut steps, &mut batch, &mut batch_high, &mut batch_low, m);
            }
            if high.is_empty() {
                flush_flat(&mut steps, &mut flat);
                local.push(CompiledOp::compile(op, m));
                counts.0 += 1;
            } else if support.len() <= m {
                flush_flat(&mut steps, &mut flat);
                flush_local(&mut steps, &mut local);
                batch.push(op.clone());
                batch_high = high;
                batch_low = low;
            } else {
                flush_local(&mut steps, &mut local);
                flat.push(CompiledOp::compile(op, num_qubits));
                counts.2 += 1;
            }
        }
        counts.1 += close_batch(&mut steps, &mut batch, &mut batch_high, &mut batch_low, m);
        flush_local(&mut steps, &mut local);
        flush_flat(&mut steps, &mut flat);

        ShardedCircuit {
            num_qubits,
            shard_qubits,
            steps,
            local_ops: counts.0,
            exchanged_ops: counts.1,
            flat_ops: counts.2,
        }
    }

    /// Register width `n` the plan was compiled for.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of chunks `2^k` the plan was compiled for.
    pub fn num_shards(&self) -> usize {
        1usize << self.shard_qubits
    }

    /// Number of shard-index qubits `k`.
    pub fn shard_qubits(&self) -> usize {
        self.shard_qubits
    }

    /// The shard boundary `m = n − k`.
    pub fn local_qubits(&self) -> usize {
        self.num_qubits - self.shard_qubits
    }

    /// Total compiled operations across all step kinds.
    pub fn len(&self) -> usize {
        self.local_ops + self.exchanged_ops + self.flat_ops
    }

    /// True when the plan has no operations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ops served embarrassingly parallel per shard.
    pub fn local_ops(&self) -> usize {
        self.local_ops
    }

    /// Ops served inside pairwise exchange rounds.
    pub fn exchanged_ops(&self) -> usize {
        self.exchanged_ops
    }

    /// Ops served by the gather/scatter fallback.
    pub fn flat_ops(&self) -> usize {
        self.flat_ops
    }

    /// Number of pairwise exchange rounds one application performs — the
    /// communication metric the low-support fusion preference minimizes.
    pub fn exchange_rounds(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Exchange { .. }))
            .count()
    }

    /// Number of full gather/scatter fallbacks one application performs
    /// (each is strictly more traffic than any exchange round).
    pub fn flat_gathers(&self) -> usize {
        self.steps
            .iter()
            .filter(|s| matches!(s, Step::Flat(_)))
            .count()
    }

    /// Apply the plan to a sharded register in place.  Bit-identical to
    /// applying the same operation list flat (see the [module docs](self)).
    pub fn apply(&self, state: &mut ShardedState) {
        assert_eq!(
            (state.num_qubits, state.shard_qubits),
            (self.num_qubits, self.shard_qubits),
            "plan compiled for {} qubits / {} shards, state has {} / {}",
            self.num_qubits,
            self.num_shards(),
            state.num_qubits,
            state.num_shards(),
        );
        for step in &self.steps {
            match step {
                Step::Local(ops) => apply_per_shard(state, ops),
                Step::Exchange { swaps, ops } => {
                    for &(g, l) in swaps {
                        exchange_halves(state, g, l);
                    }
                    apply_per_shard(state, ops);
                    for &(g, l) in swaps.iter().rev() {
                        exchange_halves(state, g, l);
                    }
                }
                Step::Flat(ops) => {
                    let mut full = state.gather();
                    let mut scratch = Vec::new();
                    for op in ops {
                        op.apply(&mut full, &mut scratch);
                    }
                    state.scatter(&full);
                }
            }
        }
    }
}

fn sorted_union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out: Vec<usize> = a.iter().chain(b).copied().collect();
    out.sort_unstable();
    out.dedup();
    out
}

fn flush_local(steps: &mut Vec<Step>, local: &mut Vec<CompiledOp>) {
    if !local.is_empty() {
        steps.push(Step::Local(std::mem::take(local)));
    }
}

fn flush_flat(steps: &mut Vec<Step>, flat: &mut Vec<CompiledOp>) {
    if !flat.is_empty() {
        steps.push(Step::Flat(std::mem::take(flat)));
    }
}

/// Close the open exchange batch: pick one partner local qubit per global
/// qubit (the smallest locals no op of the round touches — feasibility
/// `|high| + |low| ≤ m` guarantees enough of them), emit the round with
/// every op's qubit list transposed through the `(global, local)` swaps,
/// and return how many ops it serves.
fn close_batch(
    steps: &mut Vec<Step>,
    batch: &mut Vec<Operation>,
    batch_high: &mut Vec<usize>,
    batch_low: &mut Vec<usize>,
    m: usize,
) -> usize {
    if batch.is_empty() {
        return 0;
    }
    let high = std::mem::take(batch_high);
    let low = std::mem::take(batch_low);
    let ops = std::mem::take(batch);
    let mut partners: Vec<usize> = Vec::with_capacity(high.len());
    let mut l = 0usize;
    while partners.len() < high.len() {
        if !low.contains(&l) {
            partners.push(l);
        }
        l += 1;
    }
    debug_assert!(partners.last().is_none_or(|&p| p < m));
    let swaps: Vec<(usize, usize)> = high.into_iter().zip(partners).collect();
    let remap = |q: usize| -> usize {
        for &(g, l) in &swaps {
            if q == g {
                return l;
            }
            if q == l {
                return g;
            }
        }
        q
    };
    let count = ops.len();
    let compiled = ops
        .iter()
        .map(|op| {
            // Transpose in place, preserving target order: the generic
            // kernel's column order and the diagonal kernel's gather order
            // must match the flat oracle bit for bit.
            let targets: Vec<usize> = op.targets.iter().map(|&q| remap(q)).collect();
            let controls: Vec<usize> = op.controls.iter().map(|&q| remap(q)).collect();
            CompiledOp::compile(&Operation::new(op.gate.clone(), targets, controls), m)
        })
        .collect();
    steps.push(Step::Exchange {
        swaps,
        ops: compiled,
    });
    count
}

/// Apply a run of `m`-qubit compiled ops to every chunk, fanning out across
/// shards (never inside them — one worker per chunk keeps the accumulation
/// order bit-identical to the flat sweep) when the work justifies threads.
fn apply_per_shard(state: &mut ShardedState, ops: &[CompiledOp]) {
    let shard_len = 1usize << state.local_qubits();
    let per_shard: usize = ops
        .iter()
        .map(|op| op.work_estimate(shard_len))
        .fold(0usize, |a, w| a.saturating_add(w));
    let total = per_shard.saturating_mul(state.shards.len());
    let run = |sh: &mut Shard| {
        for op in ops {
            op.apply_sequential(&mut sh.amps, &mut sh.scratch);
        }
    };
    if state.shards.len() >= 2
        && total >= PARALLEL_WORK_THRESHOLD
        && rayon::current_num_threads() > 1
    {
        state.shards.par_iter_mut().for_each(run);
    } else {
        for sh in &mut state.shards {
            run(sh);
        }
    }
}

/// Pointer to the shard array usable from the pair fan-out.  Each worker
/// touches exactly the two shards of its pair and every shard belongs to at
/// most one pair, so the mutable accesses are disjoint.
#[derive(Clone, Copy)]
struct ShardsPtr(*mut Shard);
unsafe impl Send for ShardsPtr {}
unsafe impl Sync for ShardsPtr {}

/// Transpose global qubit `g` with local qubit `l`: partner shards
/// (differing in `g`'s shard-index bit) swap the chunk halves selected by
/// bit `l`.  Self-inverse, pure data movement.
fn exchange_halves(state: &mut ShardedState, g: usize, l: usize) {
    let m = state.local_qubits();
    debug_assert!(g >= m && l < m);
    let gbit = 1usize << (g - m);
    let lbit = 1usize << l;
    let shard_len = state.shard_len();
    let pairs: Vec<usize> = (0..state.shards.len()).filter(|s| s & gbit == 0).collect();
    let swap_pair = |a: &mut [Complex64], b: &mut [Complex64]| {
        // Indices with bit `l` clear come in runs of `lbit`: swap each run's
        // bit-set sibling in shard `a` with the run itself in shard `b`.
        let mut j = 0usize;
        while j < shard_len {
            a[j + lbit..j + 2 * lbit].swap_with_slice(&mut b[j..j + lbit]);
            j += 2 * lbit;
        }
    };
    let moved = pairs.len().saturating_mul(shard_len);
    if pairs.len() >= 2 && moved >= PARALLEL_WORK_THRESHOLD && rayon::current_num_threads() > 1 {
        let ptr = ShardsPtr(state.shards.as_mut_ptr());
        pairs.par_iter().for_each(|&s0| {
            // SAFETY: s0 and s0|gbit are distinct in-bounds indices, and no
            // other worker's pair contains either (pairs partition the
            // shards by the gbit axis).
            let copy = ptr;
            let a = unsafe { &mut (*copy.0.add(s0)).amps };
            let b = unsafe { &mut (*copy.0.add(s0 | gbit)).amps };
            swap_pair(a, b);
        });
    } else {
        for &s0 in &pairs {
            let (lo, hi) = state.shards.split_at_mut(s0 | gbit);
            swap_pair(&mut lo[s0].amps, &mut hi[0].amps);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{circuit_compile_count, CompiledCircuit};

    fn roundtrip(n: usize, shards: usize, circ: &Circuit) -> (StateVector, StateVector) {
        let mut flat = StateVector::zero_state(n);
        CompiledCircuit::compile_for(circ, n).apply(&mut flat);
        let plan = ShardedCircuit::compile(circ, n, shards);
        let mut ss = ShardedState::zero_state(n, shards);
        plan.apply(&mut ss);
        (flat, ss.into_state())
    }

    #[test]
    fn state_roundtrips_between_flat_and_sharded() {
        let mut circ = Circuit::new(3);
        circ.h(0).cx(0, 1).ry(2, 0.7);
        let flat = StateVector::run(&circ);
        for shards in [1, 2, 4, 8] {
            let ss = ShardedState::from_state(&flat, shards);
            assert_eq!(ss.num_shards(), shards);
            assert_eq!(ss.to_state().amplitudes(), flat.amplitudes());
            assert!((ss.norm() - flat.norm()).abs() < 1e-15);
            for q in 0..3 {
                assert!((ss.probability_of_one(q) - flat.probability_of_one(q)).abs() < 1e-15);
            }
        }
    }

    #[test]
    fn exchange_is_self_inverse() {
        let mut circ = Circuit::new(4);
        circ.h(0).h(1).h(2).h(3).rz(1, 0.3).cx(0, 3);
        let flat = StateVector::run(&circ);
        let mut ss = ShardedState::from_state(&flat, 4);
        exchange_halves(&mut ss, 3, 1);
        exchange_halves(&mut ss, 3, 1);
        assert_eq!(ss.to_state().amplitudes(), flat.amplitudes());
    }

    #[test]
    fn low_ops_make_one_local_step_and_no_rounds() {
        let mut circ = Circuit::new(5);
        circ.h(0).cx(0, 1).rz(1, 0.4).swap(0, 2);
        let plan = ShardedCircuit::compile(&circ, 5, 4); // m = 3
        assert_eq!(plan.local_ops(), 4);
        assert_eq!(plan.exchange_rounds(), 0);
        assert_eq!(plan.flat_gathers(), 0);
        let (flat, sharded) = roundtrip(5, 4, &circ);
        assert_eq!(flat.amplitudes(), sharded.amplitudes());
    }

    #[test]
    fn high_ops_batch_into_rounds() {
        let mut circ = Circuit::new(5);
        // m = 3 with 4 shards: qubits 3 and 4 are global.  Both ops fit one
        // round (high {3,4} + low {0} = 3 ≤ m), the interleaved low op rides
        // along.
        circ.h(3).rz(0, 0.2).cx(4, 0);
        let plan = ShardedCircuit::compile(&circ, 5, 4);
        assert_eq!(plan.exchange_rounds(), 1);
        assert_eq!(plan.exchanged_ops(), 3);
        assert_eq!(plan.flat_gathers(), 0);
        let (flat, sharded) = roundtrip(5, 4, &circ);
        assert_eq!(flat.amplitudes(), sharded.amplitudes());
    }

    #[test]
    fn wide_ops_fall_back_to_flat_gather() {
        let mut circ = Circuit::new(3);
        circ.h(0).ccx(0, 1, 2).h(2);
        // m = 1 with 4 shards: the Toffoli's 3-qubit support cannot fit any
        // exchange round.
        let plan = ShardedCircuit::compile(&circ, 3, 4);
        assert!(plan.flat_gathers() >= 1);
        let (flat, sharded) = roundtrip(3, 4, &circ);
        assert_eq!(flat.amplitudes(), sharded.amplitudes());
    }

    #[test]
    fn single_amplitude_shards_run_everything_flat() {
        let mut circ = Circuit::new(2);
        circ.h(0).cx(0, 1).t(1);
        // m = 0: no local qubits at all, the plan degenerates to gathers.
        let plan = ShardedCircuit::compile(&circ, 2, 4);
        assert_eq!(plan.local_ops(), 0);
        assert_eq!(plan.exchange_rounds(), 0);
        let (flat, sharded) = roundtrip(2, 4, &circ);
        assert_eq!(flat.amplitudes(), sharded.amplitudes());
    }

    #[test]
    fn compile_once_and_runs_never_recompile() {
        let mut circ = Circuit::new(4);
        circ.h(0).cx(0, 3).rz(3, 0.5).swap(1, 3);
        let before = circuit_compile_count();
        let plan = ShardedCircuit::compile(&circ, 4, 4);
        assert_eq!(circuit_compile_count(), before + 1);
        let mut ss = ShardedState::zero_state(4, 4);
        for _ in 0..3 {
            plan.apply(&mut ss);
        }
        assert_eq!(circuit_compile_count(), before + 1);
    }
}
