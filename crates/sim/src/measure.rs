//! Measurement and sampling.
//!
//! The paper's complexity model charges `O(1/ε²)` *samples* per solve because
//! the QSVT result is read out by repeated measurement (Remark 3: the hybrid
//! algorithm relies on the "collapse" of the quantum solution).  This module
//! provides shot sampling from a state vector, empirical estimation of the
//! solution amplitudes from counts, and the sign-recovery step needed to turn
//! magnitude-only counts back into a signed real vector.

use crate::state::StateVector;
use qls_linalg::Vector;
use rand::Rng;
use std::collections::HashMap;

/// Result of sampling a state vector with a finite number of shots.
#[derive(Debug, Clone)]
pub struct SampleResult {
    /// Number of shots taken.
    pub shots: usize,
    /// Counts per basis state index.
    pub counts: HashMap<usize, usize>,
}

impl SampleResult {
    /// Empirical probability of basis state `index`.
    pub fn frequency(&self, index: usize) -> f64 {
        *self.counts.get(&index).unwrap_or(&0) as f64 / self.shots as f64
    }

    /// Empirical probabilities as a dense vector of length `dim`.
    pub fn frequencies(&self, dim: usize) -> Vec<f64> {
        (0..dim).map(|i| self.frequency(i)).collect()
    }
}

/// Draw `shots` samples from the measurement distribution of `state` in the
/// computational basis.
pub fn sample(state: &StateVector, shots: usize, rng: &mut impl Rng) -> SampleResult {
    let probs = state.probabilities();
    // Build the cumulative distribution once; each shot is a binary search.
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for &p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(1e-300);
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for _ in 0..shots {
        let r: f64 = rng.gen_range(0.0..total);
        let idx = cdf.partition_point(|&c| c < r).min(probs.len() - 1);
        *counts.entry(idx).or_insert(0) += 1;
    }
    SampleResult { shots, counts }
}

/// Estimate the *magnitudes* of the state amplitudes from sampled counts
/// (`|a_i| ≈ √(counts_i / shots)`).
pub fn estimate_magnitudes(result: &SampleResult, dim: usize) -> Vec<f64> {
    result
        .frequencies(dim)
        .into_iter()
        .map(|f| f.sqrt())
        .collect()
}

/// Reconstruct a signed real vector from sampled magnitudes by borrowing the
/// signs of a reference vector (for real linear systems, one extra circuit with
/// a known phase reference — or, in simulation, the exact state — provides the
/// signs; the sampling noise only affects the magnitudes).
pub fn signed_from_magnitudes(magnitudes: &[f64], sign_reference: &[f64]) -> Vector<f64> {
    assert_eq!(magnitudes.len(), sign_reference.len(), "dimension mismatch");
    magnitudes
        .iter()
        .zip(sign_reference)
        .map(|(&m, &s)| if s < 0.0 { -m } else { m })
        .collect()
}

/// Number of shots the paper's model prescribes to reach accuracy ε: `⌈c/ε²⌉`.
pub fn shots_for_accuracy(epsilon: f64, constant: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    (constant / (epsilon * epsilon)).ceil() as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn sampling_matches_distribution() {
        let mut circ = Circuit::new(2);
        circ.h(0); // p(00) = p(01) = 1/2
        let sv = StateVector::run(&circ);
        let mut rng = ChaCha8Rng::seed_from_u64(71);
        let result = sample(&sv, 20_000, &mut rng);
        assert_eq!(result.shots, 20_000);
        assert!((result.frequency(0) - 0.5).abs() < 0.02);
        assert!((result.frequency(1) - 0.5).abs() < 0.02);
        assert_eq!(result.frequency(2), 0.0);
        assert_eq!(result.frequency(3), 0.0);
    }

    #[test]
    fn deterministic_state_always_gives_same_outcome() {
        let sv = StateVector::basis_state(3, 6);
        let mut rng = ChaCha8Rng::seed_from_u64(72);
        let result = sample(&sv, 100, &mut rng);
        assert_eq!(result.frequency(6), 1.0);
        assert_eq!(result.counts.len(), 1);
    }

    #[test]
    fn magnitude_estimation_converges_with_shots() {
        let mut circ = Circuit::new(2);
        circ.ry(0, 1.23).cry(0, 1, 0.4);
        let sv = StateVector::run(&circ);
        let exact: Vec<f64> = sv.amplitudes().iter().map(|a| a.norm()).collect();
        let mut rng = ChaCha8Rng::seed_from_u64(73);
        let coarse = estimate_magnitudes(&sample(&sv, 100, &mut rng), 4);
        let fine = estimate_magnitudes(&sample(&sv, 100_000, &mut rng), 4);
        let err = |est: &[f64]| -> f64 {
            est.iter()
                .zip(&exact)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max)
        };
        assert!(err(&fine) < 0.01);
        assert!(err(&fine) <= err(&coarse) + 1e-9);
    }

    #[test]
    fn sign_recovery() {
        let mags = vec![0.5, 0.5, 0.7, 0.1];
        let reference = vec![1.0, -2.0, 3.0, -0.0];
        let signed = signed_from_magnitudes(&mags, &reference);
        assert_eq!(signed.as_slice(), &[0.5, -0.5, 0.7, 0.1]);
    }

    #[test]
    fn shot_count_formula() {
        assert_eq!(shots_for_accuracy(1e-2, 1.0), 10_000);
        assert_eq!(shots_for_accuracy(0.5, 2.0), 8);
        assert!(shots_for_accuracy(1e-4, 1.0) > shots_for_accuracy(1e-3, 1.0));
    }

    #[test]
    fn seeded_sampling_is_reproducible() {
        let mut circ = Circuit::new(3);
        circ.h(0).h(1).h(2);
        let sv = StateVector::run(&circ);
        let r1 = sample(&sv, 500, &mut ChaCha8Rng::seed_from_u64(99));
        let r2 = sample(&sv, 500, &mut ChaCha8Rng::seed_from_u64(99));
        assert_eq!(r1.counts, r2.counts);
    }
}
